#include "core/native_runtime.h"

#include <algorithm>
#include <chrono>

#include "trace/measured_trace.h"
#include "util/log.h"
#include "util/thread_pool.h"

namespace repro::core {

namespace {

using trace::TaskId;
using trace::TaskKind;
using trace::ThreadId;

/** Sentinel for "no recorded task". */
constexpr TaskId kNoTask = static_cast<TaskId>(-1);

/** Main/commit-protocol thread id in the measured graph (the caller
 *  executes setup, comparisons, and abort re-executions itself). */
constexpr ThreadId kMainThread = 0;

/** Per-chunk speculative products, filled by the parallel phase. */
struct ChunkProducts
{
    StateHandle specState;  //!< Alt-producer output (c > 0).
    StateHandle finalState; //!< End state of the speculative body.
    StateHandle snapshot;   //!< State at end-K (c < C-1).
    std::vector<double> outputs; //!< Dense, indexed from chunk begin.

    // Recorded task ids of this chunk's speculative execution.
    TaskId altTask = kNoTask;      //!< AltProducer replay (c > 0).
    TaskId specCopyTask = kNoTask; //!< Spec-state clone for the check.
    TaskId bodyA = kNoTask;        //!< Body up to the snapshot point.
    TaskId snapshotTask = kNoTask; //!< Snapshot clone (c < C-1).
    TaskId bodyB = kNoTask;        //!< Body after the snapshot point.
    TaskId bodyLast = kNoTask;     //!< Last body task (final state).
};

/**
 * Optional observation of one run: every call forwards to the
 * recorder when one is attached and is a no-op otherwise, so the
 * unrecorded hot path stays free of bookkeeping.
 */
class Observer
{
  public:
    explicit Observer(trace::MeasuredTraceRecorder *recorder)
        : rec_(recorder)
    {
    }

    bool on() const { return rec_ != nullptr; }

    TaskId
    begin(TaskKind kind, ThreadId thread,
          std::int32_t chunk = trace::kNoChunk) const
    {
        return rec_ ? rec_->begin(kind, thread, chunk) : kNoTask;
    }

    void
    end(TaskId id) const
    {
        if (rec_)
            rec_->end(id);
    }

    void
    dep(TaskId before, TaskId after) const
    {
        if (rec_ && before != kNoTask && after != kNoTask)
            rec_->addDep(before, after);
    }

    void
    retag(TaskId id, TaskKind kind) const
    {
        if (rec_ && id != kNoTask)
            rec_->retag(id, kind);
    }

  private:
    trace::MeasuredTraceRecorder *rec_;
};

/**
 * Installs the recorder's profiler on the shared pool for the scope
 * of one recorded run, restoring the previous profiler on exit, so
 * the measured trace also captures real worker occupancy.
 */
class ScopedPoolProfile
{
  public:
    ScopedPoolProfile(util::ThreadPool &pool,
                      trace::MeasuredTraceRecorder *recorder)
        : pool_(pool), active_(recorder != nullptr)
    {
        if (active_)
            previous_ = pool_.setProfiler(recorder->poolProfiler());
    }

    ~ScopedPoolProfile()
    {
        if (active_)
            pool_.setProfiler(std::move(previous_));
    }

  private:
    util::ThreadPool &pool_;
    bool active_;
    std::shared_ptr<util::ThreadPool::Profiler> previous_;
};

/**
 * Runs updates [from, to) on @p state with @p rng, charged to @p kind
 * (the category the span's computation belongs to in the overhead
 * taxonomy: ChunkBody for useful work, AltProducer for speculative
 * replays, OriginalStateGen for boundary replicas, MispecReExec for
 * abort re-execution).
 */
void
runSpan(const IStateModel &model, State &state, std::size_t from,
        std::size_t to, util::Rng &rng, double *outs, TaskKind kind)
{
    ExecContext ctx(rng, nullptr, kind);
    for (std::size_t i = from; i < to; ++i) {
        const double out = model.update(state, i, ctx);
        if (outs)
            outs[i - from] = out;
    }
    rng = ctx.rng();
}

} // namespace

NativeRuntime::NativeRuntime(unsigned max_threads)
    : maxThreads(util::ThreadPool::defaultThreadCount(max_threads))
{
}

NativeRuntime::Result
NativeRuntime::runSequential(const IStateModel &model, std::uint64_t seed,
                             trace::MeasuredTraceRecorder *recorder) const
{
    const Observer obs(recorder);
    const auto start = std::chrono::steady_clock::now();
    Result result;
    result.outputs.resize(model.numInputs());
    StateHandle state = model.initialState();
    util::Rng rng = util::Rng(seed).split(1);
    const TaskId body = obs.begin(TaskKind::ChunkBody, kMainThread);
    runSpan(model, *state, 0, model.numInputs(), rng,
            result.outputs.data(), TaskKind::ChunkBody);
    obs.end(body);
    result.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return result;
}

NativeRuntime::Result
NativeRuntime::run(const IStateModel &model, const StatsConfig &config,
                   std::uint64_t seed,
                   trace::MeasuredTraceRecorder *recorder) const
{
    config.validate(model.numInputs());
    if (!config.useStatsTlp)
        util::fatal("NativeRuntime::run requires useStatsTlp");

    const auto start = std::chrono::steady_clock::now();
    const std::size_t n = model.numInputs();
    const unsigned C = config.numChunks;
    const unsigned K = config.altWindowK;
    const unsigned R = config.numOriginalStates;
    util::Rng base(seed);

    if (C == 1) {
        // Degenerate single chunk: the sequential program.
        return runSequential(model, seed, recorder);
    }

    const Observer obs(recorder);
    const auto chunk_thread = [](unsigned c) -> ThreadId { return 1 + c; };
    const auto replica_thread = [&](unsigned c, unsigned rep) -> ThreadId {
        return 1 + C + c * (R >= 1 ? R - 1 : 0) + rep;
    };

    const TaskId setup = obs.begin(TaskKind::Setup, kMainThread);

    std::vector<std::size_t> begin(C), end(C);
    for (unsigned c = 0; c < C; ++c) {
        begin[c] = n * c / C;
        end[c] = n * (c + 1) / C;
    }

    Result result;
    result.outputs.assign(n, 0.0);
    std::vector<ChunkProducts> chunks(C);
    obs.end(setup);

    // ----- Parallel phase: speculative execution of every chunk -------
    // Chunk workers run on the shared process pool (capped at
    // maxThreads concurrent executors) instead of spawning a thread
    // batch per round; each iteration writes only chunks[c], so the
    // dynamic iteration-to-thread mapping cannot change the result.
    util::ThreadPool &pool = util::ThreadPool::global();
    const ScopedPoolProfile poolProfile(pool, recorder);
    pool.parallelFor(
        C,
        [&](std::size_t chunk) {
            const unsigned c = static_cast<unsigned>(chunk);
            const ThreadId th = chunk_thread(c);
            ChunkProducts &cp = chunks[c];
            StateHandle working;
            if (c == 0) {
                working = model.initialState();
            } else {
                // Alternative producer (same streams as the
                // engine: split(2000 + c)).
                working = model.coldState();
                util::Rng alt_rng = base.split(2000 + c);
                cp.altTask = obs.begin(TaskKind::AltProducer, th,
                                       static_cast<std::int32_t>(c));
                obs.dep(setup, cp.altTask);
                runSpan(model, *working, begin[c] - K, begin[c],
                        alt_rng, nullptr, TaskKind::AltProducer);
                obs.end(cp.altTask);
                cp.specCopyTask =
                    obs.begin(TaskKind::StateCopy, th,
                              static_cast<std::int32_t>(c));
                cp.specState = working->clone();
                obs.end(cp.specCopyTask);
            }

            const bool needs_snapshot = c + 1 < C;
            const std::size_t snap =
                needs_snapshot ? std::max(begin[c], end[c] - K)
                               : end[c];
            util::Rng body_rng = base.split(1000 + c);
            cp.outputs.resize(end[c] - begin[c]);
            cp.bodyA = obs.begin(TaskKind::ChunkBody, th,
                                 static_cast<std::int32_t>(c));
            if (c == 0)
                obs.dep(setup, cp.bodyA);
            runSpan(model, *working, begin[c], snap, body_rng,
                    cp.outputs.data(), TaskKind::ChunkBody);
            obs.end(cp.bodyA);
            cp.bodyLast = cp.bodyA;
            if (needs_snapshot) {
                cp.snapshotTask =
                    obs.begin(TaskKind::StateCopy, th,
                              static_cast<std::int32_t>(c));
                cp.snapshot = working->clone();
                obs.end(cp.snapshotTask);
                cp.bodyB = obs.begin(TaskKind::ChunkBody, th,
                                     static_cast<std::int32_t>(c));
                runSpan(model, *working, snap, end[c], body_rng,
                        cp.outputs.data() + (snap - begin[c]),
                        TaskKind::ChunkBody);
                obs.end(cp.bodyB);
                cp.bodyLast = cp.bodyB;
            }
            cp.finalState = std::move(working);
        },
        maxThreads);

    // ----- Commit protocol: in program order ---------------------------
    // committed products of chunk c (speculative or re-executed).
    const State *committed_final = chunks[0].finalState.get();
    StateHandle committed_owned;
    StateHandle committed_snapshot =
        chunks[0].snapshot ? chunks[0].snapshot->clone() : nullptr;
    TaskId committed_final_task = chunks[0].bodyLast;
    TaskId committed_snapshot_task = chunks[0].snapshotTask;
    std::copy(chunks[0].outputs.begin(), chunks[0].outputs.end(),
              result.outputs.begin() + begin[0]);

    for (unsigned c = 0; c + 1 < C; ++c) {
        // Regenerate the extra original states from the committed
        // snapshot, in parallel (streams: split(3000 + c*128 + rep)).
        const std::size_t snap = std::max(begin[c], end[c] - K);
        std::vector<StateHandle> replicas(R >= 1 ? R - 1 : 0);
        std::vector<TaskId> replica_tasks(replicas.size(), kNoTask);
        if (R > 1) {
            pool.parallelFor(
                R - 1,
                [&](std::size_t rep) {
                    const ThreadId rth =
                        replica_thread(c, static_cast<unsigned>(rep));
                    const TaskId rep_copy =
                        obs.begin(TaskKind::StateCopy, rth,
                                  static_cast<std::int32_t>(c));
                    obs.dep(committed_snapshot_task, rep_copy);
                    StateHandle replica = committed_snapshot->clone();
                    obs.end(rep_copy);
                    const TaskId rep_task =
                        obs.begin(TaskKind::OriginalStateGen, rth,
                                  static_cast<std::int32_t>(c));
                    util::Rng rng =
                        base.split(3000 + c * 128 + rep);
                    runSpan(model, *replica, snap, end[c], rng, nullptr,
                            TaskKind::OriginalStateGen);
                    obs.end(rep_task);
                    replica_tasks[rep] = rep_task;
                    replicas[rep] = std::move(replica);
                },
                maxThreads);
        }

        // Commit check of chunk c+1: compare its speculative state
        // against each original state until a match (paper Fig. 6).
        ChunkProducts &nxt = chunks[c + 1];
        const auto compare = [&](const State &original, bool first) {
            const TaskId cmp =
                obs.begin(TaskKind::StateCompare, kMainThread,
                          static_cast<std::int32_t>(c));
            if (first) {
                obs.dep(committed_final_task, cmp);
                obs.dep(nxt.specCopyTask, cmp);
                for (TaskId rt : replica_tasks)
                    obs.dep(rt, cmp);
            }
            const bool matched = model.matches(*nxt.specState, original);
            obs.end(cmp);
            return matched;
        };
        bool matched = compare(*committed_final, true);
        for (unsigned rep = 0; !matched && rep + 1 < R; ++rep)
            matched = compare(*replicas[rep], false);

        if (matched) {
            ++result.commits;
            std::copy(nxt.outputs.begin(), nxt.outputs.end(),
                      result.outputs.begin() + begin[c + 1]);
            committed_owned.reset();
            committed_final = nxt.finalState.get();
            committed_snapshot =
                nxt.snapshot ? nxt.snapshot->clone() : nullptr;
            committed_final_task = nxt.bodyLast;
            committed_snapshot_task = nxt.snapshotTask;
        } else {
            // Abort: re-execute chunk c+1 from the committed final
            // state (streams: split(5000 + c + 1)).  The wasted
            // speculative body work is re-attributed to
            // mispeculation, exactly as the engine retags it.
            ++result.aborts;
            obs.retag(nxt.bodyA, TaskKind::MispecReExec);
            obs.retag(nxt.bodyB, TaskKind::MispecReExec);
            const TaskId redo_copy =
                obs.begin(TaskKind::StateCopy, kMainThread,
                          static_cast<std::int32_t>(c + 1));
            obs.dep(committed_final_task, redo_copy);
            StateHandle redo = committed_final->clone();
            obs.end(redo_copy);
            util::Rng redo_rng = base.split(5000 + c + 1);
            const bool needs_snapshot = c + 2 < C;
            const std::size_t redo_snap =
                needs_snapshot ? std::max(begin[c + 1], end[c + 1] - K)
                               : end[c + 1];
            const TaskId redo_a =
                obs.begin(TaskKind::MispecReExec, kMainThread,
                          static_cast<std::int32_t>(c + 1));
            runSpan(model, *redo, begin[c + 1], redo_snap, redo_rng,
                    result.outputs.data() + begin[c + 1],
                    TaskKind::MispecReExec);
            obs.end(redo_a);
            committed_final_task = redo_a;
            if (needs_snapshot) {
                const TaskId redo_snap_copy =
                    obs.begin(TaskKind::StateCopy, kMainThread,
                              static_cast<std::int32_t>(c + 1));
                committed_snapshot = redo->clone();
                obs.end(redo_snap_copy);
                committed_snapshot_task = redo_snap_copy;
                const TaskId redo_b =
                    obs.begin(TaskKind::MispecReExec, kMainThread,
                              static_cast<std::int32_t>(c + 1));
                runSpan(model, *redo, redo_snap, end[c + 1], redo_rng,
                        result.outputs.data() + redo_snap,
                        TaskKind::MispecReExec);
                obs.end(redo_b);
                committed_final_task = redo_b;
            } else {
                committed_snapshot.reset();
                committed_snapshot_task = kNoTask;
            }
            committed_owned = std::move(redo);
            committed_final = committed_owned.get();
        }
    }

    result.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return result;
}

} // namespace repro::core
