#include "core/native_runtime.h"

#include <algorithm>
#include <chrono>

#include "core/versioned_state.h"
#include "metrics/metrics.h"
#include "obs/abort_report.h"
#include "obs/span_recorder.h"
#include "trace/measured_trace.h"
#include "util/log.h"
#include "util/task_graph_executor.h"
#include "util/thread_pool.h"

namespace repro::core {

namespace {

using trace::TaskId;
using trace::TaskKind;
using trace::ThreadId;

/**
 * Always-on runtime counters (metrics/metrics.h): cheap enough to
 * leave enabled on every run, unlike the opt-in measured trace.  The
 * protocol outcome counters (commits, aborts, matches) are shared by
 * both commit protocols; per-phase latencies are kept per protocol so
 * a snapshot separates barrier from pipelined behaviour.
 */
struct RuntimeCounters
{
    metrics::Counter &statsRuns;      //!< NativeRuntime::run calls.
    metrics::Counter &sequentialRuns; //!< runSequential calls.
    metrics::Counter &commits;        //!< Chunks committed.
    metrics::Counter &aborts;         //!< Chunks aborted + re-executed.
    metrics::Counter &compares;       //!< Replica validations.
    metrics::Counter &matches;        //!< ... that accepted the chunk.
    metrics::Counter &mismatches;     //!< ... that rejected it.
    metrics::Counter &replicaRegens;  //!< Original states regenerated.
    metrics::Counter &stateCopies;    //!< State clones.
    metrics::Counter &stateCopyBytes; //!< Bytes those clones moved.
};

RuntimeCounters &
runtimeCounters()
{
    auto &reg = metrics::MetricsRegistry::global();
    static RuntimeCounters m{reg.counter("runtime.stats_runs"),
                             reg.counter("runtime.sequential_runs"),
                             reg.counter("runtime.chunks_committed"),
                             reg.counter("runtime.chunks_aborted"),
                             reg.counter("runtime.replica_validations"),
                             reg.counter("runtime.compare_matches"),
                             reg.counter("runtime.compare_mismatches"),
                             reg.counter("runtime.replica_regens"),
                             reg.counter("runtime.state_copies"),
                             reg.counter("runtime.state_copy_bytes")};
    return m;
}

/** Per-phase latency histograms of one commit protocol. */
struct PhaseHists
{
    metrics::LatencyHistogram &chunkBody;
    metrics::LatencyHistogram &altProducer;
    metrics::LatencyHistogram &stateCopy;
    metrics::LatencyHistogram &replicaGen;
    metrics::LatencyHistogram &compare;
    metrics::LatencyHistogram &boundaryResolve;
    metrics::LatencyHistogram &reexec;
    metrics::LatencyHistogram &run;
};

const PhaseHists &
phaseHists(bool pipelined)
{
    auto &reg = metrics::MetricsRegistry::global();
    static const PhaseHists barrier{
        reg.histogram("runtime.barrier.chunk_body_seconds"),
        reg.histogram("runtime.barrier.alt_producer_seconds"),
        reg.histogram("runtime.barrier.state_copy_seconds"),
        reg.histogram("runtime.barrier.replica_gen_seconds"),
        reg.histogram("runtime.barrier.compare_seconds"),
        reg.histogram("runtime.barrier.boundary_resolve_seconds"),
        reg.histogram("runtime.barrier.reexec_seconds"),
        reg.histogram("runtime.barrier.run_seconds")};
    static const PhaseHists piped{
        reg.histogram("runtime.pipelined.chunk_body_seconds"),
        reg.histogram("runtime.pipelined.alt_producer_seconds"),
        reg.histogram("runtime.pipelined.state_copy_seconds"),
        reg.histogram("runtime.pipelined.replica_gen_seconds"),
        reg.histogram("runtime.pipelined.compare_seconds"),
        reg.histogram("runtime.pipelined.boundary_resolve_seconds"),
        reg.histogram("runtime.pipelined.reexec_seconds"),
        reg.histogram("runtime.pipelined.run_seconds")};
    return pipelined ? piped : barrier;
}

/** Sentinel for "no recorded task". */
constexpr TaskId kNoTask = static_cast<TaskId>(-1);

/** Commit-protocol thread id in the measured graph.  The protocol
 *  resolves boundaries in program order, so its tasks form one logical
 *  thread — executed by the caller under the barrier protocol, by pool
 *  workers under the pipelined one. */
constexpr ThreadId kMainThread = 0;

/** Seconds a finished span covered (0 for unfinished/untraced). */
double
spanSeconds(const obs::Span &span)
{
    return span.endNs > span.startNs
               ? static_cast<double>(span.endNs - span.startNs) * 1e-9
               : 0.0;
}

/** Fills the block-level divergence fields of @p cmp from the two
 *  states' payloads, when both are block-backed (legacy deep states
 *  keep the -1 "unknown" defaults). */
void
fillPayloadDiff(const State &spec, const State &candidate,
                obs::AbortComparison &cmp)
{
    const VersionedBuffer *a = spec.payload();
    const VersionedBuffer *b = candidate.payload();
    if (!a || !b)
        return;
    const VersionedBuffer::DiffReport d =
        VersionedBuffer::diffReport(*a, *b);
    if (!d.comparable)
        return;
    cmp.firstDiffBlock = d.firstDiffBlock;
    cmp.bytesCompared = d.bytesCompared;
}

/** Per-chunk speculative products, filled by the parallel phase. */
struct ChunkProducts
{
    StateHandle specState;  //!< Alt-producer output (c > 0).
    StateHandle finalState; //!< End state of the speculative body.
    StateHandle snapshot;   //!< State at end-K (c < C-1).
    std::vector<double> outputs; //!< Dense, indexed from chunk begin.

    // Finished obs spans of the speculative execution, kept so an
    // abort can attribute its wasted seconds (§V-B) to this chunk.
    obs::Span altSpan;
    obs::Span bodySpanA;
    obs::Span bodySpanB;

    /** Carried between the two body spans (the snapshot splits the
     *  body; the RNG stream continues across the split). */
    StateHandle working;
    util::Rng bodyRng{0};
    std::size_t snap = 0; //!< Snapshot input index (end-K clamped).

    // Recorded task ids of this chunk's speculative execution.
    TaskId altTask = kNoTask;      //!< AltProducer replay (c > 0).
    TaskId specCopyTask = kNoTask; //!< Spec-state clone for the check.
    TaskId bodyA = kNoTask;        //!< Body up to the snapshot point.
    TaskId snapshotTask = kNoTask; //!< Snapshot clone (c < C-1).
    TaskId bodyB = kNoTask;        //!< Body after the snapshot point.
    TaskId bodyLast = kNoTask;     //!< Last body task (final state).
};

/** Original-state replicas of one chunk boundary. */
struct BoundaryProducts
{
    std::vector<StateHandle> replicas;  //!< R-1 regenerated states.
    std::vector<TaskId> replicaTasks;   //!< Their OriginalStateGen ids.
    std::vector<double> replicaSeconds; //!< Regeneration wall time.
};

/**
 * Optional observation of one run: every call forwards to the
 * recorder when one is attached and is a no-op otherwise, so the
 * unrecorded hot path stays free of bookkeeping.
 */
class Observer
{
  public:
    explicit Observer(trace::MeasuredTraceRecorder *recorder)
        : rec_(recorder)
    {
    }

    bool on() const { return rec_ != nullptr; }

    TaskId
    begin(TaskKind kind, ThreadId thread,
          std::int32_t chunk = trace::kNoChunk) const
    {
        return rec_ ? rec_->begin(kind, thread, chunk) : kNoTask;
    }

    void
    end(TaskId id) const
    {
        if (rec_)
            rec_->end(id);
    }

    TaskId
    measured(TaskKind kind, ThreadId thread, double duration_us,
             std::int32_t chunk = trace::kNoChunk) const
    {
        return rec_ ? rec_->addMeasured(kind, thread, duration_us, chunk)
                    : kNoTask;
    }

    void
    dep(TaskId before, TaskId after) const
    {
        if (rec_ && before != kNoTask && after != kNoTask)
            rec_->addDep(before, after);
    }

    void
    retag(TaskId id, TaskKind kind) const
    {
        if (rec_ && id != kNoTask)
            rec_->retag(id, kind);
    }

  private:
    trace::MeasuredTraceRecorder *rec_;
};

/**
 * Installs the recorder's profiler on the shared pool for the scope
 * of one recorded run, restoring the previous profiler on exit, so
 * the measured trace also captures real worker occupancy.
 */
class ScopedPoolProfile
{
  public:
    ScopedPoolProfile(util::ThreadPool &pool,
                      trace::MeasuredTraceRecorder *recorder)
        : pool_(pool), active_(recorder != nullptr)
    {
        if (active_)
            previous_ = pool_.setProfiler(recorder->poolProfiler());
    }

    ~ScopedPoolProfile()
    {
        if (active_)
            pool_.setProfiler(std::move(previous_));
    }

  private:
    util::ThreadPool &pool_;
    bool active_;
    std::shared_ptr<util::ThreadPool::Profiler> previous_;
};

/**
 * Runs updates [from, to) on @p state with @p rng, charged to @p kind
 * (the category the span's computation belongs to in the overhead
 * taxonomy: ChunkBody for useful work, AltProducer for speculative
 * replays, OriginalStateGen for boundary replicas, MispecReExec for
 * abort re-execution).
 */
void
runSpan(const IStateModel &model, State &state, std::size_t from,
        std::size_t to, util::Rng &rng, double *outs, TaskKind kind)
{
    ExecContext ctx(rng, nullptr, kind);
    for (std::size_t i = from; i < to; ++i) {
        const double out = model.update(state, i, ctx);
        if (outs)
            outs[i - from] = out;
    }
    rng = ctx.rng();
}

/**
 * One NativeRuntime::run invocation: the speculative chunk executions,
 * boundary replicas, and in-order commit resolution, schedulable
 * either as the historical two-phase barrier or as a dependency-driven
 * pipeline (see native_runtime.h).  Both schedules run the *same*
 * member steps below on the same RNG streams, so their results are
 * bit-identical; only when and where each step executes differs.
 */
class RunImpl
{
  public:
    RunImpl(const IStateModel &model, const StatsConfig &config,
            std::uint64_t seed, trace::MeasuredTraceRecorder *recorder,
            unsigned max_threads)
        : model_(model), obs_(recorder), base_(seed),
          n_(model.numInputs()), C_(config.numChunks),
          K_(config.altWindowK), R_(config.numOriginalStates),
          maxThreads_(max_threads), pool_(util::ThreadPool::global()),
          poolProfile_(pool_, recorder), met_(runtimeCounters()),
          ph_(&phaseHists(false)),
          stateBytes_(model.stateSizeBytes())
    {
        setupTask_ = obs_.begin(TaskKind::Setup, kMainThread);
        begin_.resize(C_);
        end_.resize(C_);
        for (unsigned c = 0; c < C_; ++c) {
            begin_[c] = n_ * c / C_;
            end_[c] = n_ * (c + 1) / C_;
        }
        result_.outputs.assign(n_, 0.0);
        chunks_.resize(C_);
        boundaries_.resize(C_ - 1);
        for (BoundaryProducts &bp : boundaries_) {
            bp.replicas.resize(R_ >= 1 ? R_ - 1 : 0);
            bp.replicaTasks.assign(bp.replicas.size(), kNoTask);
            bp.replicaSeconds.assign(bp.replicas.size(), 0.0);
        }
        obs_.end(setupTask_);
    }

    /**
     * Two-phase schedule: all chunk bodies behind one parallelFor
     * barrier, then each boundary regenerates its replicas and
     * resolves on the calling thread.
     */
    NativeRuntime::Result
    runBarrier()
    {
        double join_wait = 0.0;
        pool_.parallelFor(
            C_,
            [&](std::size_t chunk) {
                const unsigned c = static_cast<unsigned>(chunk);
                speculateChunkToSnapshot(c);
                if (c + 1 < C_)
                    speculateChunkAfterSnapshot(c);
            },
            maxThreads_, 0, obs_.on() ? &join_wait : nullptr);
        // The join is a real scheduling constraint of this protocol:
        // no commit work starts before *every* chunk body finished.
        // Record it as a Sync task whose cost is the caller's measured
        // wait at the barrier, fed by every chunk body and gating the
        // commit phase, so the measured graph mirrors the barrier, not
        // the pipeline (the what-if replay would otherwise credit the
        // barrier with overlap it never had, and the §V-B ladder's
        // synchronization step would have nothing to remove).  The
        // pipelined schedule has no counterpart: its terminal wait
        // gates no work, and commit checks fire from their own
        // dependencies.
        if (obs_.on()) {
            const TaskId sync = obs_.measured(TaskKind::Sync, kMainThread,
                                              join_wait * 1e6);
            for (const ChunkProducts &cp : chunks_)
                obs_.dep(cp.bodyLast, sync);
            joinSources_.assign(1, sync);
            lastMainTask_ = sync;
        }
        for (unsigned c = 0; c + 1 < C_; ++c)
            resolveBoundary(c);
        return std::move(result_);
    }

    /**
     * Dependency-driven schedule: chunk spans, eager replicas, and
     * boundary resolutions become TaskGraphExecutor nodes that fire
     * as soon as their declared predecessors finish.  Boundary c
     * needs chunks c and c+1 plus its replicas — never the chunks
     * beyond c+1, so commits overlap with downstream speculation.
     */
    NativeRuntime::Result
    runPipelined()
    {
        pipelined_ = true;
        ph_ = &phaseHists(true);
        using NodeId = util::TaskGraphExecutor::NodeId;
        util::TaskGraphExecutor exec(pool_, maxThreads_);

        // Chunk c splits at its snapshot so boundary-c replicas can
        // launch from the snapshot while the chunk tail still runs.
        std::vector<NodeId> head(C_), tail(C_);
        for (unsigned c = 0; c < C_; ++c) {
            head[c] =
                exec.add([this, c] { speculateChunkToSnapshot(c); });
            tail[c] = c + 1 < C_
                          ? exec.add(
                                [this, c] {
                                    speculateChunkAfterSnapshot(c);
                                },
                                {head[c]})
                          : head[c];
        }

        // Eager replicas: regenerate boundary c's original states from
        // chunk c's *speculative* snapshot, concurrently with every
        // chunk body still in flight.
        std::vector<std::vector<NodeId>> replicaNodes(C_ - 1);
        for (unsigned c = 0; c + 1 < C_; ++c) {
            for (unsigned rep = 0; rep + 1 < R_; ++rep) {
                replicaNodes[c].push_back(exec.add(
                    [this, c, rep] { generateEagerReplica(c, rep); },
                    {head[c]}));
            }
        }

        // Boundary c fires once chunks c (via the boundary chain) and
        // c+1 plus boundary-c replicas are done; the chain keeps
        // commits in program order.
        NodeId prev_boundary = 0;
        for (unsigned c = 0; c + 1 < C_; ++c) {
            std::vector<NodeId> deps;
            deps.push_back(c == 0 ? tail[0] : prev_boundary);
            deps.push_back(tail[c + 1]);
            deps.insert(deps.end(), replicaNodes[c].begin(),
                        replicaNodes[c].end());
            prev_boundary =
                exec.add([this, c] { resolveBoundary(c); }, deps);
        }

        exec.wait();
        return std::move(result_);
    }

  private:
    /** Clones @p source, charging the copy to the always-on metrics
     *  (count, bytes, latency).  All protocol state copies go through
     *  here; the recorder's StateCopy tasks stay at the call sites.
     *  Block-state payloads report the bytes the clone actually moved
     *  (zero for a pure block-sharing copy-on-write clone). */
    StateHandle
    cloneCounted(const State &source)
    {
        const metrics::ScopedTimer timer(ph_->stateCopy);
        met_.stateCopies.inc();
        StateHandle copy = source.clone();
        met_.stateCopyBytes.inc(
            copy->payload() ? copy->payload()->creationStats().bytesCopied
                            : stateBytes_);
        return copy;
    }

    ThreadId
    chunkThread(unsigned c) const
    {
        return 1 + c;
    }

    ThreadId
    replicaThread(unsigned c, unsigned rep) const
    {
        return 1 + C_ + c * (R_ >= 1 ? R_ - 1 : 0) + rep;
    }

    /** Alt-producer replay, spec-state copy, body up to the snapshot,
     *  and the snapshot clone of chunk @p c (the whole body when the
     *  chunk is last and has no snapshot). */
    void
    speculateChunkToSnapshot(unsigned c)
    {
        const ThreadId th = chunkThread(c);
        ChunkProducts &cp = chunks_[c];
        StateHandle working;
        if (c == 0) {
            working = model_.initialState();
        } else {
            // Alternative producer (same streams as the engine:
            // split(2000 + c)).
            working = model_.coldState();
            util::Rng alt_rng = base_.split(2000 + c);
            cp.altTask = obs_.begin(TaskKind::AltProducer, th,
                                    static_cast<std::int32_t>(c));
            obs_.dep(setupTask_, cp.altTask);
            cp.altSpan = spans_.start(
                obs::SpanKind::AltProducer, 0, 0,
                static_cast<std::int64_t>(c),
                static_cast<std::int64_t>(begin_[c]),
                static_cast<std::uint32_t>(end_[c] - begin_[c]),
                static_cast<std::int64_t>(K_));
            {
                const metrics::ScopedTimer timer(ph_->altProducer);
                runSpan(model_, *working, begin_[c] - K_, begin_[c],
                        alt_rng, nullptr, TaskKind::AltProducer);
            }
            spans_.finish(cp.altSpan);
            obs_.end(cp.altTask);
            cp.specCopyTask = obs_.begin(TaskKind::StateCopy, th,
                                         static_cast<std::int32_t>(c));
            cp.specState = cloneCounted(*working);
            obs_.end(cp.specCopyTask);
        }

        const bool needs_snapshot = c + 1 < C_;
        cp.snap = needs_snapshot ? std::max(begin_[c], end_[c] - K_)
                                 : end_[c];
        cp.bodyRng = base_.split(1000 + c);
        cp.outputs.resize(end_[c] - begin_[c]);
        cp.bodyA = obs_.begin(TaskKind::ChunkBody, th,
                              static_cast<std::int32_t>(c));
        if (c == 0)
            obs_.dep(setupTask_, cp.bodyA);
        cp.bodySpanA = spans_.start(
            obs::SpanKind::ChunkBody, cp.altSpan.id, 0,
            static_cast<std::int64_t>(c),
            static_cast<std::int64_t>(begin_[c]),
            static_cast<std::uint32_t>(cp.snap - begin_[c]));
        {
            const metrics::ScopedTimer timer(ph_->chunkBody);
            runSpan(model_, *working, begin_[c], cp.snap, cp.bodyRng,
                    cp.outputs.data(), TaskKind::ChunkBody);
        }
        spans_.finish(cp.bodySpanA);
        obs_.end(cp.bodyA);
        cp.bodyLast = cp.bodyA;
        if (needs_snapshot) {
            cp.snapshotTask = obs_.begin(TaskKind::StateCopy, th,
                                         static_cast<std::int32_t>(c));
            cp.snapshot = cloneCounted(*working);
            obs_.end(cp.snapshotTask);
            cp.working = std::move(working);
        } else {
            cp.finalState = std::move(working);
        }
    }

    /** Body of chunk @p c after the snapshot point (continues the
     *  chunk's RNG stream).  Requires speculateChunkToSnapshot(c). */
    void
    speculateChunkAfterSnapshot(unsigned c)
    {
        const ThreadId th = chunkThread(c);
        ChunkProducts &cp = chunks_[c];
        cp.bodyB = obs_.begin(TaskKind::ChunkBody, th,
                              static_cast<std::int32_t>(c));
        cp.bodySpanB = spans_.start(
            obs::SpanKind::ChunkBody, cp.bodySpanA.id, 0,
            static_cast<std::int64_t>(c),
            static_cast<std::int64_t>(cp.snap),
            static_cast<std::uint32_t>(end_[c] - cp.snap));
        {
            const metrics::ScopedTimer timer(ph_->chunkBody);
            runSpan(model_, *cp.working, cp.snap, end_[c], cp.bodyRng,
                    cp.outputs.data() + (cp.snap - begin_[c]),
                    TaskKind::ChunkBody);
        }
        spans_.finish(cp.bodySpanB);
        obs_.end(cp.bodyB);
        cp.bodyLast = cp.bodyB;
        cp.finalState = std::move(cp.working);
    }

    /** One eagerly launched replica of boundary @p c, regenerated
     *  from chunk c's speculative snapshot (pipelined schedule). */
    void
    generateEagerReplica(unsigned c, unsigned rep)
    {
        const ChunkProducts &cp = chunks_[c];
        regenerateReplica(c, rep, *cp.snapshot, cp.snapshotTask,
                          cp.snap);
    }

    /** Clones @p source and replays the boundary inputs of chunk
     *  @p c on it (streams: split(3000 + c*128 + rep), exactly the
     *  engine's), storing the replica for the commit check.
     *  @p serialize_after: extra recorded predecessors mirroring
     *  schedule constraints beyond the data dependency. */
    void
    regenerateReplica(unsigned c, unsigned rep, const State &source,
                      TaskId source_task, std::size_t snap,
                      const std::vector<TaskId> &serialize_after = {})
    {
        const ThreadId rth = replicaThread(c, rep);
        const TaskId rep_copy = obs_.begin(
            TaskKind::StateCopy, rth, static_cast<std::int32_t>(c));
        obs_.dep(source_task, rep_copy);
        for (const TaskId before : serialize_after)
            obs_.dep(before, rep_copy);
        StateHandle replica = cloneCounted(source);
        obs_.end(rep_copy);
        const TaskId rep_task =
            obs_.begin(TaskKind::OriginalStateGen, rth,
                       static_cast<std::int32_t>(c));
        obs::Span repSpan = spans_.start(
            obs::SpanKind::ReplicaRegen, 0, 0,
            static_cast<std::int64_t>(c),
            static_cast<std::int64_t>(snap),
            static_cast<std::uint32_t>(end_[c] - snap),
            static_cast<std::int64_t>(rep));
        util::Rng rng = base_.split(3000 + c * 128 + rep);
        met_.replicaRegens.inc();
        {
            const metrics::ScopedTimer timer(ph_->replicaGen);
            runSpan(model_, *replica, snap, end_[c], rng, nullptr,
                    TaskKind::OriginalStateGen);
        }
        spans_.finish(repSpan);
        obs_.end(rep_task);
        BoundaryProducts &bp = boundaries_[c];
        bp.replicaTasks[rep] = rep_task;
        bp.replicaSeconds[rep] = spanSeconds(repSpan);
        bp.replicas[rep] = std::move(replica);
    }

    /** Regenerates every boundary-@p c replica from the *committed*
     *  snapshot, in parallel (barrier schedule, and the pipelined
     *  abort path where the eager replicas were invalidated). */
    void
    regenerateReplicasFromCommitted(unsigned c)
    {
        if (R_ <= 1)
            return;
        // Under the barrier schedule these replicas launch only after
        // the phase-1 join (boundary 0) or after the previous
        // boundary resolved — record that serialization so the
        // measured graph stays faithful to the schedule.  Under the
        // pipelined schedule the committed-snapshot dependency already
        // is the true constraint.
        std::vector<TaskId> serialize_after;
        if (!pipelined_ && lastMainTask_ != kNoTask)
            serialize_after.push_back(lastMainTask_);
        const std::size_t snap = std::max(begin_[c], end_[c] - K_);
        pool_.parallelFor(
            R_ - 1,
            [&](std::size_t rep) {
                regenerateReplica(c, static_cast<unsigned>(rep),
                                  *committedSnapshot_,
                                  committedSnapshotTask_, snap,
                                  serialize_after);
            },
            maxThreads_);
    }

    /**
     * Resolves commit boundary @p c in program order: ensures valid
     * replicas, compares chunk c+1's speculative state against each
     * original state until a match (paper Fig. 6), and commits or
     * re-executes.  Under the barrier schedule this runs on the
     * caller; under the pipelined one, on a pool worker whose node
     * fired when chunks c, c+1, and the boundary replicas finished.
     */
    void
    resolveBoundary(unsigned c)
    {
        const metrics::ScopedTimer boundary_timer(ph_->boundaryResolve);
        if (c == 0) {
            // Chunk 0 runs from the program's initial state — it is
            // never speculative, so its products commit as they are.
            committedFinal_ = chunks_[0].finalState.get();
            committedFinalTask_ = chunks_[0].bodyLast;
            committedSnapshot_ = chunks_[0].snapshot.get();
            committedSnapshotTask_ = chunks_[0].snapshotTask;
            committedSpeculative_ = true;
            std::copy(chunks_[0].outputs.begin(),
                      chunks_[0].outputs.end(),
                      result_.outputs.begin() + begin_[0]);
            obs::Span commit0 = spans_.start(
                obs::SpanKind::Commit, chunks_[0].bodySpanA.id, 0, 0,
                static_cast<std::int64_t>(begin_[0]),
                static_cast<std::uint32_t>(end_[0] - begin_[0]), -1);
            spans_.finish(commit0);
        }

        BoundaryProducts &bp = boundaries_[c];
        if (!(pipelined_ && committedSpeculative_)) {
            // Barrier schedule: replicas are always generated here,
            // from the committed snapshot.  Pipelined schedule: only
            // when chunk c was re-executed after an abort — its eager
            // replicas grew from a snapshot that never became real
            // state, so they are wasted speculation (retagged like the
            // engine retags aborted bodies) and regenerated from the
            // re-executed snapshot with the same RNG streams.
            for (const TaskId stale : bp.replicaTasks)
                obs_.retag(stale, TaskKind::MispecReExec);
            regenerateReplicasFromCommitted(c);
        }

        // Commit check of chunk c+1: compare its speculative state
        // against each original state until a match (paper Fig. 6).
        ChunkProducts &nxt = chunks_[c + 1];
        const auto compare = [&](const State &original, bool first) {
            const TaskId cmp =
                obs_.begin(TaskKind::StateCompare, kMainThread,
                           static_cast<std::int32_t>(c));
            if (first) {
                obs_.dep(committedFinalTask_, cmp);
                obs_.dep(nxt.specCopyTask, cmp);
                for (const TaskId rt : bp.replicaTasks)
                    obs_.dep(rt, cmp);
                // Barrier schedule, first boundary: the commit phase
                // starts only after the phase-1 join — joinSources_
                // holds its Sync task (empty under the pipeline).
                for (const TaskId js : joinSources_)
                    obs_.dep(js, cmp);
            }
            met_.compares.inc();
            bool matched;
            {
                const metrics::ScopedTimer timer(ph_->compare);
                matched = model_.matches(*nxt.specState, original);
            }
            (matched ? met_.matches : met_.mismatches).inc();
            obs_.end(cmp);
            lastMainTask_ = cmp;
            return matched;
        };
        obs::Span valSpan = spans_.start(
            obs::SpanKind::Validation, nxt.bodySpanA.id, 0,
            static_cast<std::int64_t>(c + 1),
            static_cast<std::int64_t>(begin_[c + 1]),
            static_cast<std::uint32_t>(end_[c + 1] - begin_[c + 1]));
        bool matched = compare(*committedFinal_, true);
        const bool matched_first = matched;
        std::int64_t matchedCandidate = matched ? -1 : -2;
        std::int64_t candidatesCompared = 1;
        for (unsigned rep = 0; !matched && rep + 1 < R_; ++rep) {
            matched = compare(*bp.replicas[rep], false);
            ++candidatesCompared;
            if (matched)
                matchedCandidate = static_cast<std::int64_t>(rep);
        }
        valSpan.detail = candidatesCompared;
        spans_.finish(valSpan);

        if (matched) {
            ++result_.commits;
            std::copy(nxt.outputs.begin(), nxt.outputs.end(),
                      result_.outputs.begin() + begin_[c + 1]);
            committedOwned_.reset();
            committedSnapshotOwned_.reset();
            committedFinal_ = nxt.finalState.get();
            committedFinalTask_ = nxt.bodyLast;
            committedSnapshot_ = nxt.snapshot.get();
            committedSnapshotTask_ = nxt.snapshotTask;
            committedSpeculative_ = true;
            obs::Span commit = spans_.start(
                obs::SpanKind::Commit, valSpan.id, 0,
                static_cast<std::int64_t>(c + 1),
                static_cast<std::int64_t>(begin_[c + 1]),
                static_cast<std::uint32_t>(end_[c + 1] - begin_[c + 1]),
                matchedCandidate);
            spans_.finish(commit);
        } else {
            obs::Span abortSpan = spans_.start(
                obs::SpanKind::Abort, valSpan.id, 0,
                static_cast<std::int64_t>(c + 1),
                static_cast<std::int64_t>(begin_[c + 1]),
                static_cast<std::uint32_t>(end_[c + 1] - begin_[c + 1]));
            if (obs::enabled()) {
                // Root-cause attribution while every candidate is
                // still alive: where each comparison diverged, and
                // what the abort cost in §V-B terms (the speculated
                // body + alt-producer work is mispeculation; replicas
                // and compares were extra computation either way).
                obs::AbortReport report;
                report.session = 0;
                report.chunk = c + 1;
                report.firstInput = begin_[c + 1];
                report.inputCount = end_[c + 1] - begin_[c + 1];
                report.spanId = abortSpan.id;
                report.wastedBodySeconds = spanSeconds(nxt.bodySpanA) +
                                           spanSeconds(nxt.bodySpanB);
                report.wastedAltSeconds = spanSeconds(nxt.altSpan);
                for (const double rs : bp.replicaSeconds)
                    report.wastedReplicaSeconds += rs;
                report.validateSeconds = spanSeconds(valSpan);
                obs::AbortComparison first;
                first.candidate = -1;
                first.matched = matched_first;
                fillPayloadDiff(*nxt.specState, *committedFinal_,
                                first);
                report.comparisons.push_back(first);
                for (std::size_t rep = 0; rep < bp.replicas.size();
                     ++rep) {
                    obs::AbortComparison cmp;
                    cmp.candidate = static_cast<int>(rep);
                    cmp.matched = false;
                    fillPayloadDiff(*nxt.specState, *bp.replicas[rep],
                                    cmp);
                    report.comparisons.push_back(cmp);
                }
                // Headline: the candidate the byte walk got furthest
                // into before diverging; ties go to the later
                // candidate so a replica is named over the committed
                // final.
                std::uint64_t best = 0;
                bool haveBest = false;
                for (const obs::AbortComparison &cmp :
                     report.comparisons) {
                    report.bytesCompared += cmp.bytesCompared;
                    if (!haveBest || cmp.bytesCompared >= best) {
                        best = cmp.bytesCompared;
                        haveBest = true;
                        report.mismatchCandidate = cmp.candidate;
                        report.firstDiffBlock = cmp.firstDiffBlock;
                    }
                }
                obs::AbortLog::global().record(std::move(report));
            }
            obs::Span reSpan = spans_.start(
                obs::SpanKind::ReExec, abortSpan.id, 0,
                static_cast<std::int64_t>(c + 1),
                static_cast<std::int64_t>(begin_[c + 1]),
                static_cast<std::uint32_t>(end_[c + 1] - begin_[c + 1]));
            reexecuteChunk(c);
            spans_.finish(reSpan);
            obs::Span commit = spans_.start(
                obs::SpanKind::Commit, abortSpan.id, 0,
                static_cast<std::int64_t>(c + 1),
                static_cast<std::int64_t>(begin_[c + 1]),
                static_cast<std::uint32_t>(end_[c + 1] - begin_[c + 1]),
                -2);
            spans_.finish(commit);
            spans_.finish(abortSpan);
        }

        // The boundary is resolved; its replicas are dead weight now
        // (eager replicas of *future* boundaries stay alive — that
        // memory is the price of the overlap).  The join edges were
        // consumed by boundary 0; later boundaries serialize on
        // lastMainTask_ instead.
        bp.replicas.clear();
        bp.replicaTasks.clear();
        joinSources_.clear();
    }

    /** Abort at boundary @p c: re-execute chunk c+1 from the
     *  committed final state (streams: split(5000 + c + 1)).  The
     *  wasted speculative body work is re-attributed to
     *  mispeculation, exactly as the engine retags it. */
    void
    reexecuteChunk(unsigned c)
    {
        ChunkProducts &nxt = chunks_[c + 1];
        ++result_.aborts;
        obs_.retag(nxt.bodyA, TaskKind::MispecReExec);
        obs_.retag(nxt.bodyB, TaskKind::MispecReExec);
        const TaskId redo_copy =
            obs_.begin(TaskKind::StateCopy, kMainThread,
                       static_cast<std::int32_t>(c + 1));
        obs_.dep(committedFinalTask_, redo_copy);
        StateHandle redo = cloneCounted(*committedFinal_);
        obs_.end(redo_copy);
        util::Rng redo_rng = base_.split(5000 + c + 1);
        const bool needs_snapshot = c + 2 < C_;
        const std::size_t redo_snap =
            needs_snapshot ? std::max(begin_[c + 1], end_[c + 1] - K_)
                           : end_[c + 1];
        const TaskId redo_a =
            obs_.begin(TaskKind::MispecReExec, kMainThread,
                       static_cast<std::int32_t>(c + 1));
        {
            const metrics::ScopedTimer timer(ph_->reexec);
            runSpan(model_, *redo, begin_[c + 1], redo_snap, redo_rng,
                    result_.outputs.data() + begin_[c + 1],
                    TaskKind::MispecReExec);
        }
        obs_.end(redo_a);
        committedFinalTask_ = redo_a;
        if (needs_snapshot) {
            const TaskId redo_snap_copy =
                obs_.begin(TaskKind::StateCopy, kMainThread,
                           static_cast<std::int32_t>(c + 1));
            committedSnapshotOwned_ = cloneCounted(*redo);
            obs_.end(redo_snap_copy);
            committedSnapshot_ = committedSnapshotOwned_.get();
            committedSnapshotTask_ = redo_snap_copy;
            const TaskId redo_b =
                obs_.begin(TaskKind::MispecReExec, kMainThread,
                           static_cast<std::int32_t>(c + 1));
            {
                const metrics::ScopedTimer timer(ph_->reexec);
                runSpan(model_, *redo, redo_snap, end_[c + 1], redo_rng,
                        result_.outputs.data() + redo_snap,
                        TaskKind::MispecReExec);
            }
            obs_.end(redo_b);
            committedFinalTask_ = redo_b;
        } else {
            committedSnapshotOwned_.reset();
            committedSnapshot_ = nullptr;
            committedSnapshotTask_ = kNoTask;
        }
        committedOwned_ = std::move(redo);
        committedFinal_ = committedOwned_.get();
        committedSpeculative_ = false;
        lastMainTask_ = committedFinalTask_;
    }

    const IStateModel &model_;
    const Observer obs_;
    const util::Rng base_;
    const std::size_t n_;
    const unsigned C_, K_, R_;
    const unsigned maxThreads_;
    util::ThreadPool &pool_;
    const ScopedPoolProfile poolProfile_;
    RuntimeCounters &met_;
    /** Batch spans record as roots of session 0 (obs/span_recorder.h);
     *  purely observational — never changes outputs. */
    obs::SpanRecorder &spans_ = obs::SpanRecorder::global();
    const PhaseHists *ph_; //!< Switched to the pipelined set by
                           //!< runPipelined().
    const std::size_t stateBytes_;

    TaskId setupTask_ = kNoTask;
    std::vector<std::size_t> begin_, end_;
    std::vector<ChunkProducts> chunks_;
    std::vector<BoundaryProducts> boundaries_;
    NativeRuntime::Result result_;
    bool pipelined_ = false;

    // Committed products of the most recently resolved chunk.  Only
    // the boundary-resolution chain touches these; under the pipelined
    // schedule the TaskGraphExecutor's dependency handoff orders that
    // chain across workers.
    const State *committedFinal_ = nullptr;
    StateHandle committedOwned_;
    const State *committedSnapshot_ = nullptr;
    StateHandle committedSnapshotOwned_;
    TaskId committedFinalTask_ = kNoTask;
    TaskId committedSnapshotTask_ = kNoTask;
    bool committedSpeculative_ = true;

    // Barrier-schedule serialization, recorded so the measured graph
    // mirrors that schedule: the phase-1 join (all chunk bodies →
    // first commit task) and the previous boundary's last
    // commit-protocol task (→ this boundary's replica launches).
    // Both stay empty/kNoTask under the pipelined schedule, whose
    // explicit data dependencies are its true constraints.
    std::vector<TaskId> joinSources_;
    TaskId lastMainTask_ = kNoTask;
};

} // namespace

const char *
commitProtocolName(CommitProtocol protocol)
{
    return protocol == CommitProtocol::Pipelined ? "pipelined"
                                                 : "barrier";
}

NativeRuntime::NativeRuntime(unsigned max_threads,
                             CommitProtocol protocol)
    : maxThreads(util::ThreadPool::defaultThreadCount(max_threads)),
      protocol_(protocol)
{
}

NativeRuntime::Result
NativeRuntime::runSequential(const IStateModel &model, std::uint64_t seed,
                             trace::MeasuredTraceRecorder *recorder) const
{
    runtimeCounters().sequentialRuns.inc();
    const Observer obs(recorder);
    const auto start = std::chrono::steady_clock::now();
    Result result;
    result.outputs.resize(model.numInputs());
    StateHandle state = model.initialState();
    util::Rng rng = util::Rng(seed).split(1);
    const TaskId body = obs.begin(TaskKind::ChunkBody, kMainThread);
    runSpan(model, *state, 0, model.numInputs(), rng,
            result.outputs.data(), TaskKind::ChunkBody);
    obs.end(body);
    result.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return result;
}

NativeRuntime::Result
NativeRuntime::run(const IStateModel &model, const StatsConfig &config,
                   std::uint64_t seed,
                   trace::MeasuredTraceRecorder *recorder) const
{
    config.validate(model.numInputs());
    if (!config.useStatsTlp)
        util::fatal("NativeRuntime::run requires useStatsTlp");

    if (config.numChunks == 1) {
        // Degenerate single chunk: the sequential program.
        return runSequential(model, seed, recorder);
    }

    const auto start = std::chrono::steady_clock::now();
    runtimeCounters().statsRuns.inc();
    RunImpl impl(model, config, seed, recorder, maxThreads);
    Result result = protocol_ == CommitProtocol::Pipelined
                        ? impl.runPipelined()
                        : impl.runBarrier();
    result.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    runtimeCounters().commits.inc(result.commits);
    runtimeCounters().aborts.inc(result.aborts);
    phaseHists(protocol_ == CommitProtocol::Pipelined)
        .run.observe(result.wallSeconds);
    return result;
}

} // namespace repro::core
