/**
 * @file
 * The STATS execution engine.
 *
 * This is the library equivalent of the STATS back-end compiler plus
 * runtime (paper §II-C): given a state dependence (IStateModel) and a
 * configuration (StatsConfig), it *logically executes* the workload under
 * the STATS execution model of §II-B — chunking the input sequence,
 * running alternative producers, regenerating multiple original states at
 * chunk boundaries, comparing states, and committing or aborting
 * speculative chunks in program order — while emitting a task graph that
 * mirrors the parallel structure the real STATS binary would have.  The
 * platform simulator then provides timing for that graph on the modeled
 * machine.
 *
 * Semantics preservation (tested in tests/core): every committed output
 * sequence could have been produced by the original sequential program,
 * because speculative chunks only commit when their starting state
 * matched a state the original (nondeterministic) computation legitimately
 * produced, and aborted chunks re-execute from the exact committed
 * predecessor state.
 */

#ifndef REPRO_CORE_ENGINE_H
#define REPRO_CORE_ENGINE_H

#include <cstdint>

#include "core/config.h"
#include "core/run_result.h"
#include "core/state_model.h"

namespace repro::core {

/**
 * Work executed outside the STATS region of interest (paper Fig. 8:
 * "Code before STATS" / "Code after STATS").
 */
struct RegionProfile
{
    double seqBeforeWork = 0.0; //!< Ops before the parallelized region.
    double seqAfterWork = 0.0;  //!< Ops after the parallelized region.
};

/**
 * Executes workloads under the sequential, original-TLP, and STATS
 * execution models.
 */
class Engine
{
  public:
    /** Cost constants of the modeled runtime implementation. */
    struct Params
    {
        double setupBaseWork = 10000.0;   //!< Fixed setup ops (§III-B).
        double setupPerThreadWork = 400.0; //!< Setup ops per thread.
        double setupPerStateWork = 100.0;  //!< Setup ops per state buffer.
        double teardownFraction = 0.3;    //!< Teardown = fraction of setup.
        double syncOpsProxy = 200.0;      //!< Ops charged per sync op.
        /** States below this size are replicated per worker thread
         *  (private copies avoid sharing); larger states are shared
         *  within a chunk (Table I accounting). */
        std::size_t perThreadStateCopyLimit = 64 * 1024;
        std::size_t fanoutRoundsPerChunk = 6; //!< TLP rounds per chunk.
        std::size_t taskSlices = 10;       //!< Preemption granularity:
                                          //!< long tasks are emitted as
                                          //!< this many slices so the
                                          //!< scheduler can time-share
                                          //!< oversubscribed cores.
        std::size_t tlpRoundsCap = 256;   //!< Rounds cap, original-TLP run.
    };

    Engine() : params_(Params{}) {}
    explicit Engine(Params params) : params_(params) {}

    /**
     * The original program, sequential build: one thread, no STATS.
     * Reference for speedups, instruction baselines, and Fig. 16.
     */
    RunResult runSequential(const IStateModel &model,
                            const RegionProfile &region,
                            std::uint64_t seed) const;

    /**
     * The original program with only its pre-existing TLP (the black
     * "Original" bars of Fig. 9): per-input work fans out over
     * @p threads workers per @p tlp, the state-dependence chain stays
     * sequential.
     */
    RunResult runOriginalTlp(const IStateModel &model,
                             const RegionProfile &region,
                             const TlpModel &tlp, unsigned threads,
                             std::uint64_t seed) const;

    /**
     * The STATS binary.  config.innerTlpThreads == 1 gives "Seq. STATS"
     * (STATS TLP only); > 1 combines the original TLP within each chunk
     * ("Par. STATS").  config.useStatsTlp == false degenerates to
     * runOriginalTlp.
     *
     * @param force_all_commit Counterfactual used by the mispeculation
     *        analysis (§III-E): every speculation is treated as matching,
     *        so no re-execution happens.
     */
    RunResult runStats(const IStateModel &model, const RegionProfile &region,
                       const TlpModel &tlp, const StatsConfig &config,
                       std::uint64_t seed,
                       bool force_all_commit = false) const;

    /** Engine cost constants. */
    const Params &params() const { return params_; }

  private:
    Params params_;
};

} // namespace repro::core

#endif // REPRO_CORE_ENGINE_H
