#include "core/versioned_state.h"

#include <algorithm>
#include <atomic>
#include <bit>

#include "metrics/metrics.h"
#include "util/blockops.h"

namespace repro::core {

namespace {

std::atomic<StateVersioning> g_versioning{StateVersioning::CopyOnWrite};

/** Registry handles for the state layer, resolved once. */
struct StateCounters
{
    metrics::Counter &blocksShared;    //!< Clone-time refcount bumps.
    metrics::Counter &blocksCopied;    //!< Deep clones + materializations.
    metrics::Counter &bytesCopied;     //!< Bytes those copies moved.
    metrics::Counter &blocksSwapped;   //!< Full overwrites, no copy.
    metrics::Counter &valCompared;     //!< Validation blocks byte-compared.
    metrics::Counter &valSkipped;      //!< ... skipped (physically shared).
    metrics::Counter &valHashed;       //!< ... re-fingerprinted.
    metrics::LatencyHistogram &cloneSeconds;
};

StateCounters &
stateCounters()
{
    auto &reg = metrics::MetricsRegistry::global();
    static StateCounters m{
        reg.counter("state.blocks_shared"),
        reg.counter("state.blocks_copied"),
        reg.counter("state.bytes_copied"),
        reg.counter("state.blocks_swapped"),
        reg.counter("state.validation_blocks_compared"),
        reg.counter("state.validation_blocks_skipped"),
        reg.counter("state.validation_blocks_hashed"),
        reg.histogram("state.clone_seconds")};
    return m;
}

} // namespace

StateVersioning
stateVersioning()
{
    return g_versioning.load(std::memory_order_relaxed);
}

void
setStateVersioning(StateVersioning mode)
{
    g_versioning.store(mode, std::memory_order_relaxed);
}

const char *
stateVersioningName(StateVersioning mode)
{
    return mode == StateVersioning::Deep ? "deep" : "cow";
}

VersionedBuffer::VersionedBuffer(std::size_t bytes,
                                 util::BlockArena *arena)
    : arena_(arena ? arena : &util::BlockArena::global()), bytes_(bytes)
{
    const std::size_t bb = arena_->blockBytes();
    shift_ = static_cast<unsigned>(std::countr_zero(bb));
    mask_ = bb - 1;
    const std::size_t n = (bytes_ + bb - 1) >> shift_;
    blocks_.resize(n);
    dirty_.assign((n + 63) / 64, 0);
    for (std::size_t bi = 0; bi < n; ++bi) {
        blocks_[bi] = arena_->allocate();
        std::memset(blocks_[bi]->data(), 0, usedBytes(bi));
    }
}

VersionedBuffer::VersionedBuffer(const VersionedBuffer &other)
    : arena_(other.arena_), bytes_(other.bytes_), shift_(other.shift_),
      mask_(other.mask_), blocks_(other.blocks_.size()),
      dirty_(other.dirty_.size(), 0)
{
    StateCounters &ctr = stateCounters();
    const metrics::ScopedTimer timer(ctr.cloneSeconds);
    const std::size_t n = blocks_.size();
    if (stateVersioning() == StateVersioning::CopyOnWrite) {
        for (std::size_t bi = 0; bi < n; ++bi) {
            util::BlockArena::retain(other.blocks_[bi]);
            blocks_[bi] = other.blocks_[bi];
        }
        creation_.blocksShared = n;
        ctr.blocksShared.inc(n);
    } else {
        for (std::size_t bi = 0; bi < n; ++bi) {
            util::BlockArena::Block *fresh = arena_->allocate();
            std::memcpy(fresh->data(), other.blocks_[bi]->data(),
                        usedBytes(bi));
            blocks_[bi] = fresh;
        }
        creation_.blocksCopied = n;
        creation_.bytesCopied = bytes_;
        ctr.blocksCopied.inc(n);
        ctr.bytesCopied.inc(bytes_);
    }
}

VersionedBuffer &
VersionedBuffer::operator=(const VersionedBuffer &other)
{
    if (this != &other) {
        VersionedBuffer tmp(other);
        *this = std::move(tmp);
    }
    return *this;
}

VersionedBuffer::VersionedBuffer(VersionedBuffer &&other) noexcept
    : arena_(other.arena_), bytes_(other.bytes_), shift_(other.shift_),
      mask_(other.mask_), blocks_(std::move(other.blocks_)),
      dirty_(std::move(other.dirty_)), creation_(other.creation_),
      copiedBytes_(other.copiedBytes_)
{
    other.blocks_.clear();
    other.bytes_ = 0;
}

VersionedBuffer &
VersionedBuffer::operator=(VersionedBuffer &&other) noexcept
{
    if (this != &other) {
        releaseAll();
        arena_ = other.arena_;
        bytes_ = other.bytes_;
        shift_ = other.shift_;
        mask_ = other.mask_;
        blocks_ = std::move(other.blocks_);
        dirty_ = std::move(other.dirty_);
        creation_ = other.creation_;
        copiedBytes_ = other.copiedBytes_;
        other.blocks_.clear();
        other.bytes_ = 0;
    }
    return *this;
}

VersionedBuffer::~VersionedBuffer() { releaseAll(); }

void
VersionedBuffer::releaseAll()
{
    for (util::BlockArena::Block *b : blocks_)
        arena_->release(b);
    blocks_.clear();
}

void
VersionedBuffer::markDirty(std::size_t bi)
{
    dirty_[bi >> 6] |= std::uint64_t{1} << (bi & 63);
}

std::byte *
VersionedBuffer::writableBlock(std::size_t bi)
{
    util::BlockArena::Block *b = blocks_[bi];
    if (b->refs.load(std::memory_order_acquire) > 1) {
        util::BlockArena::Block *fresh = arena_->allocate();
        const std::size_t used = usedBytes(bi);
        std::memcpy(fresh->data(), b->data(), used);
        arena_->release(b);
        blocks_[bi] = b = fresh;
        copiedBytes_ += used;
        StateCounters &ctr = stateCounters();
        ctr.blocksCopied.inc();
        ctr.bytesCopied.inc(used);
    } else {
        b->invalidateHash();
    }
    markDirty(bi);
    return b->data();
}

std::byte *
VersionedBuffer::freshBlock(std::size_t bi)
{
    util::BlockArena::Block *b = blocks_[bi];
    if (b->refs.load(std::memory_order_acquire) > 1) {
        util::BlockArena::Block *fresh = arena_->allocate();
        arena_->release(b);
        blocks_[bi] = b = fresh;
        stateCounters().blocksSwapped.inc();
    } else {
        b->invalidateHash();
    }
    markDirty(bi);
    return b->data();
}

VersionedBuffer::TransformSlot
VersionedBuffer::beginFullTransform(std::size_t bi)
{
    util::BlockArena::Block *b = blocks_[bi];
    markDirty(bi);
    if (b->refs.load(std::memory_order_acquire) > 1) {
        util::BlockArena::Block *fresh = arena_->allocate();
        stateCounters().blocksSwapped.inc();
        return TransformSlot{fresh->data(), b->data(), fresh, bi};
    }
    b->invalidateHash();
    return TransformSlot{b->data(), b->data(), nullptr, bi};
}

void
VersionedBuffer::endFullTransform(const TransformSlot &slot)
{
    if (slot.fresh != nullptr) {
        // The stale shared block was the transform's source; drop our
        // reference only after the new content is fully written.
        arena_->release(blocks_[slot.bi]);
        blocks_[slot.bi] = slot.fresh;
    }
}

void
VersionedBuffer::clearDirty()
{
    std::fill(dirty_.begin(), dirty_.end(), 0);
}

std::size_t
VersionedBuffer::dirtyBlockCount() const
{
    std::size_t n = 0;
    for (std::uint64_t w : dirty_)
        n += static_cast<std::size_t>(std::popcount(w));
    return n;
}

bool
VersionedBuffer::contentEquals(const VersionedBuffer &a,
                               const VersionedBuffer &b)
{
    if (a.bytes_ != b.bytes_)
        return false;
    if (a.bytes_ == 0)
        return true;
    StateCounters &ctr = stateCounters();
    if (a.blockBytes() != b.blockBytes()) {
        // Mixed-arena payloads: lockstep walk over the smaller block
        // granularity (no sharing to exploit).
        bool equal = true;
        std::uint64_t compared = 0;
        std::size_t pos = 0;
        while (equal && pos < a.bytes_) {
            const std::size_t pa = a.blockBytes() - (pos & a.mask_);
            const std::size_t pb = b.blockBytes() - (pos & b.mask_);
            const std::size_t len =
                std::min({pa, pb, a.bytes_ - pos});
            equal = util::blockops::wordsEqual(
                a.blockData(pos >> a.shift_) + (pos & a.mask_),
                b.blockData(pos >> b.shift_) + (pos & b.mask_), len);
            ++compared;
            pos += len;
        }
        ctr.valCompared.inc(compared);
        return equal;
    }
    std::uint64_t skipped = 0;
    std::uint64_t compared = 0;
    bool equal = true;
    const std::size_t n = a.blocks_.size();
    for (std::size_t bi = 0; bi < n && equal; ++bi) {
        if (a.blocks_[bi] == b.blocks_[bi]) {
            ++skipped; // Physically shared: equal by identity.
            continue;
        }
        ++compared;
        std::uint64_t ha = 0;
        std::uint64_t hb = 0;
        if (a.blocks_[bi]->cachedHash(ha) &&
            b.blocks_[bi]->cachedHash(hb) && ha != hb) {
            equal = false; // Distinct fingerprints prove inequality.
            continue;
        }
        equal = util::blockops::wordsEqual(a.blockData(bi),
                                           b.blockData(bi),
                                           a.usedBytes(bi));
    }
    ctr.valSkipped.inc(skipped);
    ctr.valCompared.inc(compared);
    return equal;
}

VersionedBuffer::DiffReport
VersionedBuffer::diffReport(const VersionedBuffer &a,
                            const VersionedBuffer &b)
{
    DiffReport r;
    if (a.bytes_ != b.bytes_)
        return r;
    r.comparable = true;
    if (a.bytes_ == 0) {
        r.equal = true;
        return r;
    }
    if (a.blockBytes() != b.blockBytes()) {
        // Mixed granularity: lockstep walk, first difference reported
        // in a's block coordinates.
        std::size_t pos = 0;
        while (pos < a.bytes_) {
            const std::size_t pa = a.blockBytes() - (pos & a.mask_);
            const std::size_t pb = b.blockBytes() - (pos & b.mask_);
            const std::size_t len = std::min({pa, pb, a.bytes_ - pos});
            r.bytesCompared += len;
            if (!util::blockops::wordsEqual(
                    a.blockData(pos >> a.shift_) + (pos & a.mask_),
                    b.blockData(pos >> b.shift_) + (pos & b.mask_),
                    len)) {
                r.firstDiffBlock =
                    static_cast<std::int64_t>(pos >> a.shift_);
                return r;
            }
            pos += len;
        }
        r.equal = true;
        return r;
    }
    const std::size_t n = a.blocks_.size();
    for (std::size_t bi = 0; bi < n; ++bi) {
        if (a.blocks_[bi] == b.blocks_[bi]) {
            ++r.blocksShared; // Identity proves equality, 0 bytes read.
            continue;
        }
        const std::size_t used = a.usedBytes(bi);
        r.bytesCompared += used;
        if (!util::blockops::wordsEqual(a.blockData(bi), b.blockData(bi),
                                        used)) {
            r.firstDiffBlock = static_cast<std::int64_t>(bi);
            return r;
        }
    }
    r.equal = true;
    return r;
}

std::uint64_t
VersionedBuffer::contentHash() const
{
    StateCounters &ctr = stateCounters();
    std::uint64_t h =
        util::blockops::hash64(&bytes_, sizeof(bytes_), 0x5157A7D5u);
    std::uint64_t hashed = 0;
    for (std::size_t bi = 0; bi < blocks_.size(); ++bi) {
        std::uint64_t bh = 0;
        if (!blocks_[bi]->cachedHash(bh)) {
            bh = util::blockops::hash64(blockData(bi), usedBytes(bi));
            blocks_[bi]->publishHash(bh);
            ++hashed;
        }
        h = util::blockops::hashCombine(h, bh);
    }
    ctr.valHashed.inc(hashed);
    return h;
}

std::size_t
VersionedBuffer::sharedBlocksWith(const VersionedBuffer &other) const
{
    const std::size_t n =
        std::min(blocks_.size(), other.blocks_.size());
    std::size_t shared = 0;
    for (std::size_t bi = 0; bi < n; ++bi)
        shared += blocks_[bi] == other.blocks_[bi] ? 1 : 0;
    return shared;
}

} // namespace repro::core
