#include "core/config.h"

#include <algorithm>

#include "util/log.h"

namespace repro::core {

std::string
StatsConfig::describe() const
{
    std::string s = "C=" + std::to_string(numChunks) +
                    ",k=" + std::to_string(altWindowK) +
                    ",R=" + std::to_string(numOriginalStates) +
                    ",t=" + std::to_string(innerTlpThreads);
    if (!useStatsTlp)
        s += ",stats=off";
    return s;
}

std::string
StatsConfig::check(std::size_t num_inputs) const
{
    if (numChunks == 0)
        return "StatsConfig: numChunks must be >= 1";
    if (numOriginalStates == 0)
        return "StatsConfig: numOriginalStates must be >= 1";
    if (innerTlpThreads == 0)
        return "StatsConfig: innerTlpThreads must be >= 1";
    if (num_inputs < numChunks)
        return "StatsConfig: fewer inputs (" + std::to_string(num_inputs) +
               ") than chunks (" + std::to_string(numChunks) + ")";
    if (useStatsTlp && numChunks > 1) {
        const std::size_t min_chunk = num_inputs / numChunks;
        if (altWindowK >= min_chunk)
            return "StatsConfig: alt window k=" +
                   std::to_string(altWindowK) +
                   " not smaller than chunk length " +
                   std::to_string(min_chunk);
        if (altWindowK == 0)
            return "StatsConfig: altWindowK must be >= 1 when STATS TLP "
                   "is on";
    }
    return "";
}

void
StatsConfig::validate(std::size_t num_inputs) const
{
    const std::string problem = check(num_inputs);
    if (!problem.empty())
        util::fatal(problem);
}

std::size_t
DesignSpace::size() const
{
    return chunkOptions.size() * windowOptions.size() *
           origStateOptions.size() * innerTlpOptions.size();
}

StatsConfig
DesignSpace::at(std::size_t index) const
{
    REPRO_ASSERT(index < size(), "design-space index out of range");
    StatsConfig cfg;
    cfg.innerTlpThreads = innerTlpOptions[index % innerTlpOptions.size()];
    index /= innerTlpOptions.size();
    cfg.numOriginalStates = origStateOptions[index % origStateOptions.size()];
    index /= origStateOptions.size();
    cfg.altWindowK = windowOptions[index % windowOptions.size()];
    index /= windowOptions.size();
    cfg.numChunks = chunkOptions[index];
    return cfg;
}

std::size_t
DesignSpace::indexOf(const StatsConfig &config) const
{
    auto find = [](const std::vector<unsigned> &options, unsigned value,
                   std::size_t &out) {
        const auto it = std::find(options.begin(), options.end(), value);
        if (it == options.end())
            return false;
        out = static_cast<std::size_t>(it - options.begin());
        return true;
    };
    std::size_t ci = 0, wi = 0, ri = 0, ti = 0;
    if (!find(chunkOptions, config.numChunks, ci) ||
        !find(windowOptions, config.altWindowK, wi) ||
        !find(origStateOptions, config.numOriginalStates, ri) ||
        !find(innerTlpOptions, config.innerTlpThreads, ti)) {
        return size();
    }
    return ((ci * windowOptions.size() + wi) * origStateOptions.size() +
            ri) *
               innerTlpOptions.size() +
           ti;
}

DesignSpace
DesignSpace::standard(std::size_t num_inputs, unsigned max_cores)
{
    DesignSpace space;
    for (unsigned c : {2u, 4u, 7u, 14u, 28u, 56u, 112u, 280u}) {
        if (c <= max_cores * 10 && c * 2 <= num_inputs)
            space.chunkOptions.push_back(c);
    }
    if (space.chunkOptions.empty())
        space.chunkOptions.push_back(2);
    const std::size_t min_chunk =
        num_inputs / space.chunkOptions.back();
    for (unsigned k : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
        if (k < std::max<std::size_t>(min_chunk, 2))
            space.windowOptions.push_back(k);
    }
    if (space.windowOptions.empty())
        space.windowOptions.push_back(1);
    space.origStateOptions = {1, 2, 3, 4};
    space.innerTlpOptions = {1, 2, 4, 8, 18};
    return space;
}

} // namespace repro::core
