#include "obs/flight_recorder.h"

#include <fstream>
#include <sstream>

#include "metrics/export.h"
#include "util/json.h"
#include "util/log.h"

namespace repro::obs {

namespace {

metrics::Counter &
flightDumpsCounter()
{
    static metrics::Counter &c =
        metrics::MetricsRegistry::global().counter("obs.flight_dumps");
    return c;
}

} // namespace

FlightRecorder::FlightRecorder(Options options)
    : opts_(std::move(options))
{
    // Register the counter eagerly so snapshots carry the name even
    // before the first dump (metrics_diff watches for removal).
    (void)flightDumpsCounter();
    lastPoll_ = now();
}

std::chrono::steady_clock::time_point
FlightRecorder::now() const
{
    return opts_.clock ? opts_.clock()
                       : std::chrono::steady_clock::now();
}

std::optional<FlightDumpInfo>
FlightRecorder::poll()
{
    const metrics::MetricsSnapshot cur =
        metrics::MetricsRegistry::global().snapshot();
    lastPoll_ = now();
    if (!primed_) {
        // First poll establishes the window baseline; predicates need
        // a delta to judge.
        prev_ = cur;
        primed_ = true;
        return std::nullopt;
    }
    const metrics::MetricsSnapshot delta = metrics::snapshotDiff(prev_, cur);
    prev_ = cur;
    if (triggered_ >= opts_.maxDumps)
        return std::nullopt;

    std::string reason;
    if (opts_.watchDwellViolations &&
        delta.counterValue("adapt.dwell_violations") > 0) {
        reason = "dwell_violation";
    } else if (opts_.abortBurst > 0 &&
               delta.counterValue(opts_.abortCounter) >=
                   opts_.abortBurst) {
        reason = "abort_burst";
    } else if (opts_.latencySloSeconds > 0.0) {
        const auto window = delta.histogramValue(opts_.latencyHistogram);
        if (window.count > 0 &&
            window.quantileSeconds(0.99) > opts_.latencySloSeconds)
            reason = "latency_slo";
    }
    if (reason.empty())
        return std::nullopt;
    ++triggered_;
    return dump(reason);
}

std::optional<FlightDumpInfo>
FlightRecorder::dump(const std::string &reason)
{
    SpanRecorder &recorder =
        opts_.recorder ? *opts_.recorder : SpanRecorder::global();
    Span span = recorder.start(SpanKind::FlightDump, 0, 0, -1, -1, 0,
                               static_cast<std::int64_t>(dumps_));
    const SpanSnapshot spans = recorder.snapshot();
    const metrics::MetricsSnapshot snap =
        metrics::MetricsRegistry::global().snapshot();
    const std::vector<AbortReport> reports = AbortLog::global().recent();
    const std::uint64_t wallNs = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            now().time_since_epoch())
            .count());

    FlightDumpInfo info;
    info.reason = reason;
    info.sequence = dumps_;
    std::ostringstream name;
    name << (opts_.dir.empty() ? std::string(".") : opts_.dir)
         << "/flight-" << dumps_ << ".json";
    info.path = name.str();

    std::ofstream os(info.path);
    if (!os) {
        REPRO_LOG_WARN("flight recorder cannot write " << info.path);
        return std::nullopt;
    }
    os << flightDumpJson(reason, spans, snap, reports, wallNs) << "\n";
    ++dumps_;
    flightDumpsCounter().inc();
    recorder.finish(span);
    return info;
}

std::string
flightDumpJson(const std::string &reason, const SpanSnapshot &spans,
               const metrics::MetricsSnapshot &metrics,
               const std::vector<AbortReport> &reports,
               std::uint64_t wallNs)
{
    std::ostringstream os;
    os << "{\n"
       << "  \"schema\": \"repro.flight.v1\",\n"
       << "  \"reason\": \"" << util::jsonEscape(reason) << "\",\n"
       << "  \"wall_ns\": " << wallNs << ",\n"
       << "  \"spans_recorded\": " << spans.recorded << ",\n"
       << "  \"spans_dropped\": " << spans.dropped << ",\n"
       << "  \"spans\": [";
    for (std::size_t i = 0; i < spans.spans.size(); ++i) {
        const Span &s = spans.spans[i];
        os << (i ? "," : "") << "\n    {\"id\": " << s.id
           << ", \"parent\": " << s.parent << ", \"kind\": \""
           << spanKindName(s.kind) << "\", \"session\": " << s.session
           << ", \"chunk\": " << s.chunk
           << ", \"first_input\": " << s.firstInput
           << ", \"input_count\": " << s.inputCount
           << ", \"thread\": " << s.thread
           << ", \"start_ns\": " << s.startNs
           << ", \"end_ns\": " << s.endNs
           << ", \"detail\": " << s.detail << "}";
    }
    os << (spans.spans.empty() ? "" : "\n  ") << "],\n"
       << "  \"abort_reports\": [";
    for (std::size_t i = 0; i < reports.size(); ++i)
        os << (i ? "," : "") << "\n    "
           << abortReportJson(reports[i], "    ");
    os << (reports.empty() ? "" : "\n  ") << "],\n"
       << "  \"metrics\": " << metrics::toJson(metrics, "  ") << "\n"
       << "}";
    return os.str();
}

} // namespace repro::obs
