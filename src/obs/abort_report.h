/**
 * @file
 * Structured root-cause attribution for aborts.
 *
 * When a boundary mispeculates, the aggregate counters only say "one
 * more abort".  An AbortReport says *why*: which candidate states were
 * compared (the committed final and each original-state replica),
 * which one mismatched where (first differing block from the
 * VersionedBuffer walk, bytes compared before the verdict), and how
 * much speculative work the abort wasted, attributed to the paper's
 * §V-B overhead categories — the mispeculated body/alt-producer time
 * versus the extra-computation replica and validation time the chunk
 * also paid.
 *
 * Reports are kept in one process-wide bounded log (aborts are rare;
 * a small mutex-guarded ring is plenty) and surfaced three ways: the
 * obs.abort.* metric family, flight-recorder dumps, and the Abort
 * span that links the report into the causal chain.
 */

#ifndef REPRO_OBS_ABORT_REPORT_H
#define REPRO_OBS_ABORT_REPORT_H

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace repro::obs {

/** One candidate comparison of the commit check. */
struct AbortComparison
{
    /** Candidate identity: -1 = committed final state, >= 0 = that
     *  original-state replica. */
    int candidate = -1;
    bool matched = false;
    /** First block index where the speculative entry state diverged
     *  from this candidate; -1 when the states are not block-backed
     *  (legacy deep states) and only the model verdict is known. */
    std::int64_t firstDiffBlock = -1;
    std::uint64_t bytesCompared = 0;
};

/** Root-cause record of one aborted boundary. */
struct AbortReport
{
    std::uint64_t session = 0;    //!< 0 = batch run.
    std::int64_t chunk = -1;      //!< Aborted chunk / boundary index.
    std::int64_t firstInput = -1; //!< Stream index of chunk's inputs.
    std::uint32_t inputCount = 0;
    std::uint64_t spanId = 0;     //!< The Abort span, 0 = untraced.

    /** Every candidate compared at the boundary, in check order. */
    std::vector<AbortComparison> comparisons;

    /** Headline: candidate whose comparison the check walked furthest
     *  (-1 committed final), i.e. the named mismatching replica. */
    int mismatchCandidate = -1;
    std::int64_t firstDiffBlock = -1; //!< Of the headline candidate.
    std::uint64_t bytesCompared = 0;  //!< Total across comparisons.

    // Wasted speculative work, §V-B attribution (seconds).
    double wastedBodySeconds = 0.0;    //!< Mispeculation: chunk body.
    double wastedAltSeconds = 0.0;     //!< Mispeculation: alt producer.
    double wastedReplicaSeconds = 0.0; //!< Extra computation: replicas.
    double validateSeconds = 0.0;      //!< Extra computation: compares.
};

/** Bounded process-wide log of recent reports. */
class AbortLog
{
  public:
    static constexpr std::size_t kCapacity = 256;

    static AbortLog &global();

    /** Appends @p report (evicting the oldest past kCapacity) and
     *  ticks the obs.abort.* instruments. */
    void record(AbortReport report);

    /** The retained reports, oldest first. */
    std::vector<AbortReport> recent() const;

    /** Drops every retained report (tests / bench isolation). */
    void clear();

  private:
    AbortLog() = default;

    mutable std::mutex mu_;
    std::deque<AbortReport> reports_;
};

/** Renders @p report as a JSON object ("schema" documented in
 *  DESIGN.md §17).  @p indent prefixes inner lines. */
std::string abortReportJson(const AbortReport &report,
                            const std::string &indent = "");

} // namespace repro::obs

#endif // REPRO_OBS_ABORT_REPORT_H
