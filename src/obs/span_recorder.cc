#include "obs/span_recorder.h"

#include <chrono>

#include "metrics/metrics.h"

namespace repro::obs {

namespace {

std::atomic<bool> g_enabled{true};

/** Instruments resolved once; also eagerly registers the obs.* family
 *  so snapshots (and the metrics_diff gate) always carry the names,
 *  even before the first drop / dump. */
struct ObsCounters
{
    metrics::Counter &spansRecorded;
    metrics::Counter &droppedSpans;
};

ObsCounters &
obsCounters()
{
    static ObsCounters c{
        metrics::MetricsRegistry::global().counter("obs.spans_recorded"),
        metrics::MetricsRegistry::global().counter("obs.dropped_spans"),
    };
    return c;
}

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Process-unique recorder ids so the thread-local ring cache never
 *  confuses a dead test recorder with a new one at the same address. */
std::atomic<std::uint64_t> g_recorderIds{1};

} // namespace

void
setEnabled(bool enabled)
{
    g_enabled.store(enabled, std::memory_order_relaxed);
}

bool
enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

SpanRecorder &
SpanRecorder::global()
{
    // Immortal, like MetricsRegistry::global(): worker threads
    // draining during static destruction may still record.
    static SpanRecorder *recorder = new SpanRecorder();
    // Touch the instrument family so the names exist in every
    // snapshot from the first use of the recorder.
    (void)obsCounters();
    return *recorder;
}

SpanRecorder::SpanRecorder(std::size_t slotsPerThread)
    : slots_(slotsPerThread ? slotsPerThread : 1),
      recorderId_(g_recorderIds.fetch_add(1, std::memory_order_relaxed))
{
}

SpanRecorder::ThreadRing &
SpanRecorder::ringForThisThread()
{
    // One cache entry per (thread, recorder) pair.  Keyed by the
    // recorder's unique id, not its address, so a test recorder dying
    // and a new one reusing the allocation cannot alias.
    struct CacheEntry
    {
        std::uint64_t recorder;
        ThreadRing *ring;
    };
    thread_local std::vector<CacheEntry> cache;
    for (const CacheEntry &e : cache)
        if (e.recorder == recorderId_)
            return *e.ring;

    std::lock_guard<std::mutex> lock(registryMu_);
    rings_.push_back(std::make_unique<ThreadRing>(slots_));
    ThreadRing &ring = *rings_.back();
    ring.thread = static_cast<std::uint32_t>(rings_.size() - 1);
    cache.push_back({recorderId_, &ring});
    return ring;
}

Span
SpanRecorder::start(SpanKind kind, std::uint64_t parent,
                    std::uint64_t session, std::int64_t chunk,
                    std::int64_t firstInput, std::uint32_t inputCount,
                    std::int64_t detail)
{
    Span s;
    if (!enabled())
        return s; // id 0: finish() is a no-op.
    s.id = nextId_.fetch_add(1, std::memory_order_relaxed);
    s.parent = parent;
    s.session = session;
    s.chunk = chunk;
    s.firstInput = firstInput;
    s.inputCount = inputCount;
    s.kind = kind;
    s.detail = detail;
    s.startNs = nowNs();
    return s;
}

void
SpanRecorder::finish(Span &span)
{
    if (span.id == 0)
        return;
    span.endNs = nowNs();
    record(span);
}

void
SpanRecorder::record(const Span &span)
{
    if (span.id == 0)
        return;
    ThreadRing &ring = ringForThisThread();
    std::lock_guard<std::mutex> lock(ring.mu);
    const std::size_t slot = ring.head % slots_;
    if (ring.ring[slot].id != 0) {
        ++ring.dropped; // Oldest span overwritten; loss is counted.
        obsCounters().droppedSpans.inc();
    }
    ring.ring[slot] = span;
    ring.ring[slot].thread = ring.thread;
    ++ring.head;
    ++ring.recorded;
    obsCounters().spansRecorded.inc();
}

std::uint64_t
SpanRecorder::nextId()
{
    if (!enabled())
        return 0;
    return nextId_.fetch_add(1, std::memory_order_relaxed);
}

SpanSnapshot
SpanRecorder::snapshot() const
{
    SpanSnapshot out;
    std::lock_guard<std::mutex> registry(registryMu_);
    for (const auto &ringPtr : rings_) {
        const ThreadRing &ring = *ringPtr;
        std::lock_guard<std::mutex> lock(ring.mu);
        out.dropped += ring.dropped;
        out.recorded += ring.recorded;
        // Oldest-first: when wrapped, the slot at head is the oldest
        // survivor; before wrapping, slot 0 is.
        const std::uint64_t live =
            ring.head < slots_ ? ring.head : slots_;
        const std::uint64_t first =
            ring.head < slots_ ? 0 : ring.head % slots_;
        for (std::uint64_t i = 0; i < live; ++i) {
            const Span &s = ring.ring[(first + i) % slots_];
            if (s.id != 0)
                out.spans.push_back(s);
        }
    }
    return out;
}

void
SpanRecorder::clear()
{
    std::lock_guard<std::mutex> registry(registryMu_);
    for (const auto &ringPtr : rings_) {
        ThreadRing &ring = *ringPtr;
        std::lock_guard<std::mutex> lock(ring.mu);
        for (Span &s : ring.ring)
            s = Span{};
        ring.head = 0;
        ring.dropped = 0;
        ring.recorded = 0;
    }
}

const char *
spanKindName(SpanKind kind)
{
    switch (kind) {
      case SpanKind::Submit:        return "submit";
      case SpanKind::QueueWait:     return "queue_wait";
      case SpanKind::ChunkClose:    return "chunk_close";
      case SpanKind::ChunkProcess:  return "chunk_process";
      case SpanKind::AltProducer:   return "alt_producer";
      case SpanKind::ChunkBody:     return "chunk_body";
      case SpanKind::ReplicaRegen:  return "replica_regen";
      case SpanKind::Validation:    return "validation";
      case SpanKind::Commit:        return "commit";
      case SpanKind::Abort:         return "abort";
      case SpanKind::ReExec:        return "reexec";
      case SpanKind::Callback:      return "callback";
      case SpanKind::AdaptDecision: return "adapt_decision";
      case SpanKind::FlightDump:    return "flight_dump";
      case SpanKind::NumKinds:      break;
    }
    return "unknown";
}

} // namespace repro::obs
