/**
 * @file
 * The span vocabulary of the tracing subsystem: fixed-size POD records
 * describing one timed step of the serving / batch protocol, causally
 * linked by parent ids.
 *
 * The aggregate metrics (metrics/metrics.h) answer "how much"; spans
 * answer "which one".  Every span carries the session, chunk, and
 * input-range identifiers of the work it timed plus the id of the
 * span that caused it, so a single input's life — submit, queue wait,
 * chunk closure, speculation, validation, commit or abort and
 * re-execution, callback — is reconstructable from a flight-recorder
 * dump after the fact.
 *
 * Spans are plain trivially-copyable structs: the recorder
 * (obs/span_recorder.h) stores them in fixed per-thread rings with no
 * allocation on the hot path.
 */

#ifndef REPRO_OBS_SPAN_H
#define REPRO_OBS_SPAN_H

#include <cstdint>

namespace repro::obs {

/** What a span timed.  Names mirror the protocol steps (and, where
 *  one exists, the trace::TaskKind the step is charged to). */
enum class SpanKind : std::uint8_t {
    Submit,       //!< One input accepted into a session's queue.
    QueueWait,    //!< Input's dwell between submit and chunk closure.
    ChunkClose,   //!< Coordinator closed a chunk (size or deadline).
    ChunkProcess, //!< Strand processing one closed chunk end to end.
    AltProducer,  //!< Alternative-producer replay of K inputs.
    ChunkBody,    //!< Speculative chunk body execution.
    ReplicaRegen, //!< One original-state replica regeneration.
    Validation,   //!< Commit check: spec entry vs committed/replicas.
    Commit,       //!< Boundary resolved by a match.
    Abort,        //!< Boundary mispeculated (no candidate matched).
    ReExec,       //!< Sequential re-execution after an abort.
    Callback,     //!< Result delivery to the session's callback.
    AdaptDecision, //!< Feedback-controller decision for one window.
    FlightDump,   //!< Flight-recorder dump written.
    NumKinds
};

/** Stable lower-case name of @p kind ("queue_wait", "abort", ...). */
const char *spanKindName(SpanKind kind);

/** One recorded step.  Ids are process-unique and monotone; 0 is
 *  "none" for both id (invalid span) and parent (root). */
struct Span
{
    std::uint64_t id = 0;     //!< Process-unique, 0 = invalid slot.
    std::uint64_t parent = 0; //!< Causing span, 0 = root.
    std::uint64_t session = 0; //!< Serving session id, 0 = batch/none.
    std::int64_t chunk = -1;   //!< Chunk / boundary index, -1 = n/a.
    std::int64_t firstInput = -1; //!< Stream index of first input.
    std::uint32_t inputCount = 0; //!< Inputs covered by the span.
    std::uint32_t thread = 0;     //!< Recorder thread slot.
    SpanKind kind = SpanKind::Submit;
    std::uint64_t startNs = 0; //!< steady_clock nanos at start().
    std::uint64_t endNs = 0;   //!< steady_clock nanos at finish().
    /** Kind-specific payload: replica index for ReplicaRegen, matched
     *  candidate for Commit (-1 committed final, >=0 replica), window
     *  id for AdaptDecision, dump sequence for FlightDump; -1 = n/a. */
    std::int64_t detail = -1;
};

} // namespace repro::obs

#endif // REPRO_OBS_SPAN_H
