/**
 * @file
 * Anomaly-triggered flight recorder: when a trigger predicate fires,
 * atomically snapshot the span rings, the metrics registry, and the
 * recent AbortReports into one self-contained JSON dump for
 * post-mortem analysis.
 *
 * Triggers are evaluated against the *windowed delta* of the metrics
 * registry between poll() calls, the same primitive the feedback
 * controller consumes:
 *  - e2e latency: the window's p99 of a configured latency histogram
 *    exceeded the SLO;
 *  - abort burst: more than a configured number of aborts landed in
 *    one window;
 *  - dwell violations: the adapt.dwell_violations counter (an
 *    invariant that must stay 0) incremented at all.
 *
 * The clock is injectable so tests drive triggers deterministically
 * with a fake clock; poll() itself is cheap (one registry sweep) and
 * rate-limited by maxDumps so a persistent anomaly cannot fill the
 * disk.  dump() is also callable directly — benches use it to capture
 * an induced abort storm on demand.
 */

#ifndef REPRO_OBS_FLIGHT_RECORDER_H
#define REPRO_OBS_FLIGHT_RECORDER_H

#include <chrono>
#include <functional>
#include <optional>
#include <string>

#include "metrics/metrics.h"
#include "obs/abort_report.h"
#include "obs/span_recorder.h"

namespace repro::obs {

/** One dump, described back to the caller. */
struct FlightDumpInfo
{
    std::string path;    //!< File the dump was written to.
    std::string reason;  //!< Trigger ("latency_slo", "abort_burst",
                         //!< "dwell_violation", "manual", ...).
    std::uint64_t sequence = 0; //!< 0-based dump number.
};

class FlightRecorder
{
  public:
    struct Options
    {
        /** Directory dumps are written into (flight-<seq>.json).
         *  Must exist; empty writes into the working directory. */
        std::string dir;

        /** Windowed-p99 SLO on @ref latencyHistogram; 0 disables the
         *  predicate. */
        double latencySloSeconds = 0.0;
        std::string latencyHistogram = "serving.e2e_latency_seconds";

        /** Aborts per window that count as a burst; 0 disables. */
        std::uint64_t abortBurst = 0;
        std::string abortCounter = "serving.chunks_aborted";

        /** Dump whenever adapt.dwell_violations grows (invariant: it
         *  never does). */
        bool watchDwellViolations = true;

        /** Dumps after which triggers stop firing (manual dump()
         *  still works). */
        std::size_t maxDumps = 4;

        /** Injectable clock for deterministic trigger tests; null =
         *  steady clock. */
        std::function<std::chrono::steady_clock::time_point()> clock;

        /** Recorder whose rings the dump snapshots; null = global(). */
        SpanRecorder *recorder = nullptr;
    };

    explicit FlightRecorder(Options options);

    /**
     * One trigger-evaluation window: deltas the registry since the
     * previous poll and dumps on the first predicate that fires.
     * Returns the dump written, if any.
     */
    std::optional<FlightDumpInfo> poll();

    /** Unconditional dump with @p reason (not counted against
     *  maxDumps' trigger budget).  Returns nullopt when the file
     *  cannot be written. */
    std::optional<FlightDumpInfo> dump(const std::string &reason);

    /** Dumps written so far (triggered + manual). */
    std::uint64_t dumps() const { return dumps_; }

  private:
    std::chrono::steady_clock::time_point now() const;

    const Options opts_;
    metrics::MetricsSnapshot prev_;
    bool primed_ = false;
    std::uint64_t triggered_ = 0;
    std::uint64_t dumps_ = 0;
    std::chrono::steady_clock::time_point lastPoll_;
};

/** Renders one self-contained dump document (the "repro.flight.v1"
 *  schema of DESIGN.md §17) from explicit parts — exposed so tests
 *  and benches can build dumps without a recorder instance. */
std::string flightDumpJson(const std::string &reason,
                           const SpanSnapshot &spans,
                           const metrics::MetricsSnapshot &metrics,
                           const std::vector<AbortReport> &reports,
                           std::uint64_t wallNs);

} // namespace repro::obs

#endif // REPRO_OBS_FLIGHT_RECORDER_H
