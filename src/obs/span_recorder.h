/**
 * @file
 * Lock-light per-thread span ring buffers behind one process-wide
 * recorder.
 *
 * Design mirrors metrics/metrics.h so the two layers price the same
 * way:
 *  - each recording thread owns a fixed-size ring of Span slots,
 *    created on the thread's first span and registered centrally;
 *    recording is a slot write plus a head bump — no allocation, no
 *    global lock, drop-oldest when the ring wraps (counted into the
 *    obs.dropped_spans counter so loss is observable, never silent);
 *  - a per-ring mutex serializes the owning writer with snapshot
 *    readers only — writers never contend with each other, and the
 *    mutex is uncontended except while a flight dump is copying;
 *  - obs::setEnabled(false) reduces start()/finish() to one relaxed
 *    atomic load, so bench/native_overheads can price the layer
 *    exactly like it prices metrics (tracing_overhead_fraction);
 *  - span ids come from one process-wide atomic, so parent links are
 *    valid across threads and across rings.
 *
 * The global() recorder is immortal (same leak-on-exit contract as
 * MetricsRegistry): pool threads draining during static destruction
 * can still record safely.  Tests build their own small-ring
 * instances to exercise wraparound without 4096-span fixtures.
 */

#ifndef REPRO_OBS_SPAN_RECORDER_H
#define REPRO_OBS_SPAN_RECORDER_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/span.h"

namespace repro::obs {

/** Globally enables/disables span recording (default: enabled).
 *  Independent of metrics::setEnabled so each layer prices alone. */
void setEnabled(bool enabled);

/** Whether spans currently record. */
bool enabled();

/** Everything a snapshot() returns: the surviving spans of every ring
 *  plus exact drop accounting. */
struct SpanSnapshot
{
    std::vector<Span> spans;    //!< Oldest-first per ring, rings
                                //!< concatenated in registration order.
    std::uint64_t dropped = 0;  //!< Spans overwritten before snapshot.
    std::uint64_t recorded = 0; //!< Spans ever finished into rings.
};

/**
 * The recorder.  Use global() for production spans; construct a local
 * instance (tests) to control the per-thread ring size.
 */
class SpanRecorder
{
  public:
    /** Default per-thread ring capacity.  Sized so a serving session
     *  under CI load never wraps (the smoke asserts dropped == 0)
     *  while a ring stays ~0.5 MB per thread. */
    static constexpr std::size_t kDefaultSlots = 8192;

    /** The process-wide recorder (immortal). */
    static SpanRecorder &global();

    explicit SpanRecorder(std::size_t slotsPerThread = kDefaultSlots);

    SpanRecorder(const SpanRecorder &) = delete;
    SpanRecorder &operator=(const SpanRecorder &) = delete;

    /**
     * Opens a span: allocates its id, stamps startNs, fills the
     * identity fields.  Returns a by-value Span the caller holds on
     * its stack until finish(); children may parent on span.id while
     * it is still open.  When recording is disabled the returned span
     * has id 0 and finish() on it is a no-op.
     */
    Span start(SpanKind kind, std::uint64_t parent = 0,
               std::uint64_t session = 0, std::int64_t chunk = -1,
               std::int64_t firstInput = -1, std::uint32_t inputCount = 0,
               std::int64_t detail = -1);

    /** Closes @p span (stamps endNs) and commits it to the calling
     *  thread's ring, dropping the oldest slot when full. */
    void finish(Span &span);

    /** Records an already-timed span whose start/end the caller
     *  stamped itself (queue-wait spans start at submit time on a
     *  different thread).  @p span.id must come from start() or
     *  nextId(). */
    void record(const Span &span);

    /** Allocates a span id without opening a span (0 when disabled). */
    std::uint64_t nextId();

    /** Copies every ring's surviving spans (oldest first) plus drop
     *  accounting.  Safe concurrently with writers; a writer racing
     *  the copy simply lands in the next snapshot. */
    SpanSnapshot snapshot() const;

    /** Empties every ring and zeroes drop accounting (ids keep
     *  growing).  Test / bench phase isolation only. */
    void clear();

    /** Per-thread ring capacity this recorder was built with. */
    std::size_t slotsPerThread() const { return slots_; }

  private:
    struct ThreadRing
    {
        explicit ThreadRing(std::size_t slots) : ring(slots) {}
        mutable std::mutex mu;  //!< Writer vs snapshot/clear only.
        std::vector<Span> ring; //!< Fixed capacity, id 0 = empty slot.
        std::uint64_t head = 0; //!< Next write position (monotone).
        std::uint64_t dropped = 0;
        std::uint64_t recorded = 0;
        std::uint32_t thread = 0; //!< Registration-order slot.
    };

    ThreadRing &ringForThisThread();

    const std::size_t slots_;
    const std::uint64_t recorderId_; //!< Keys the thread-local cache.
    std::atomic<std::uint64_t> nextId_{1};

    mutable std::mutex registryMu_; //!< Guards rings_ growth.
    std::vector<std::unique_ptr<ThreadRing>> rings_;
};

} // namespace repro::obs

#endif // REPRO_OBS_SPAN_RECORDER_H
