#include "obs/abort_report.h"

#include <sstream>

#include "metrics/metrics.h"

namespace repro::obs {

namespace {

struct AbortInstruments
{
    metrics::Counter &reports;
    metrics::Counter &bytesCompared;
    metrics::Counter &unknownDiff;
    metrics::LatencyHistogram &wastedSeconds;
};

AbortInstruments &
abortInstruments()
{
    auto &reg = metrics::MetricsRegistry::global();
    static AbortInstruments in{
        reg.counter("obs.abort.reports"),
        reg.counter("obs.abort.bytes_compared"),
        reg.counter("obs.abort.unknown_first_diff"),
        reg.histogram("obs.abort.wasted_seconds"),
    };
    return in;
}

std::string
jsonDouble(double v)
{
    std::ostringstream os;
    os.precision(9);
    os << v;
    const std::string s = os.str();
    if (s.find_first_not_of("0123456789+-.eE") != std::string::npos)
        return "0";
    return s;
}

} // namespace

AbortLog &
AbortLog::global()
{
    static AbortLog *log = new AbortLog(); // Immortal, like the registry.
    return *log;
}

void
AbortLog::record(AbortReport report)
{
    AbortInstruments &in = abortInstruments();
    in.reports.inc();
    in.bytesCompared.inc(report.bytesCompared);
    if (report.firstDiffBlock < 0)
        in.unknownDiff.inc();
    in.wastedSeconds.observe(report.wastedBodySeconds +
                             report.wastedAltSeconds +
                             report.wastedReplicaSeconds);
    std::lock_guard<std::mutex> lock(mu_);
    reports_.push_back(std::move(report));
    while (reports_.size() > kCapacity)
        reports_.pop_front();
}

std::vector<AbortReport>
AbortLog::recent() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return {reports_.begin(), reports_.end()};
}

void
AbortLog::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    reports_.clear();
}

std::string
abortReportJson(const AbortReport &r, const std::string &indent)
{
    const std::string in1 = indent + "  ";
    const std::string in2 = indent + "    ";
    std::ostringstream os;
    os << "{\n"
       << in1 << "\"session\": " << r.session << ",\n"
       << in1 << "\"chunk\": " << r.chunk << ",\n"
       << in1 << "\"first_input\": " << r.firstInput << ",\n"
       << in1 << "\"input_count\": " << r.inputCount << ",\n"
       << in1 << "\"span_id\": " << r.spanId << ",\n"
       << in1 << "\"mismatch_candidate\": " << r.mismatchCandidate
       << ",\n"
       << in1 << "\"first_diff_block\": " << r.firstDiffBlock << ",\n"
       << in1 << "\"bytes_compared\": " << r.bytesCompared << ",\n"
       << in1 << "\"wasted\": {\n"
       << in2 << "\"body_seconds\": " << jsonDouble(r.wastedBodySeconds)
       << ",\n"
       << in2 << "\"alt_seconds\": " << jsonDouble(r.wastedAltSeconds)
       << ",\n"
       << in2
       << "\"replica_seconds\": " << jsonDouble(r.wastedReplicaSeconds)
       << ",\n"
       << in2 << "\"validate_seconds\": " << jsonDouble(r.validateSeconds)
       << "\n"
       << in1 << "},\n"
       << in1 << "\"comparisons\": [";
    for (std::size_t i = 0; i < r.comparisons.size(); ++i) {
        const AbortComparison &c = r.comparisons[i];
        os << (i ? "," : "") << "\n"
           << in2 << "{\"candidate\": " << c.candidate << ", \"matched\": "
           << (c.matched ? "true" : "false")
           << ", \"first_diff_block\": " << c.firstDiffBlock
           << ", \"bytes_compared\": " << c.bytesCompared << "}";
    }
    os << (r.comparisons.empty() ? "" : "\n" + in1) << "]\n"
       << indent << "}";
    return os.str();
}

} // namespace repro::obs
