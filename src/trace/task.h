/**
 * @file
 * Task and task-kind definitions.
 *
 * The STATS engine (src/core) executes a workload *logically* and emits a
 * task graph describing the parallel execution the STATS back-end compiler
 * would have produced: one task per unit of scheduled work, typed by the
 * overhead taxonomy of Section III of the paper.  The platform simulator
 * (src/platform) then schedules this graph on a modeled multicore to
 * obtain timing, and the analysis module (src/analysis) re-schedules
 * counterfactual variants of it to attribute speedup loss per category.
 */

#ifndef REPRO_TRACE_TASK_H
#define REPRO_TRACE_TASK_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace repro::trace {

/** Identifier of a task within its TaskGraph. */
using TaskId = std::uint32_t;

/** Identifier of a logical software thread. */
using ThreadId = std::uint32_t;

/** Sentinel for "no chunk" (setup, sequential code, ...). */
constexpr std::int32_t kNoChunk = -1;

/**
 * Category of scheduled work, following Section III of the paper.
 *
 * ChunkBody is the useful work the original program would also have done
 * inside the STATS region.  Every other kind is overhead introduced by the
 * STATS execution model (or, for SeqCode, work outside the parallelized
 * region; for MispecReExec, work re-done because a speculation aborted).
 */
enum class TaskKind : std::uint8_t
{
    ChunkBody,       //!< Real program work of a chunk (dark boxes, Fig. 2b).
    AltProducer,     //!< Alternative producer generating a speculative state.
    OriginalStateGen,//!< Replica run regenerating an extra original state.
    StateCompare,    //!< Comparison of speculative vs original state.
    StateCopy,       //!< Copy of a computational state (cost from bytes).
    Setup,           //!< Runtime setup/teardown of supporting structures.
    Sync,            //!< Thread synchronization operation (wake/signal).
    SeqCode,         //!< Code before/after the STATS region (Fig. 8).
    MispecReExec,    //!< Re-execution of an aborted speculative chunk.
    NumKinds
};

/** Number of distinct task kinds. */
constexpr std::size_t kNumTaskKinds =
    static_cast<std::size_t>(TaskKind::NumKinds);

/** Short human-readable name of a kind ("chunk-body", "alt-producer"...). */
const char *taskKindName(TaskKind kind);

/** True for kinds that are pure STATS overhead (everything except
 *  ChunkBody and SeqCode). */
bool isOverheadKind(TaskKind kind);

/**
 * One schedulable unit of work.
 *
 * @c work is in abstract work units (1 unit ~ 1 dynamic instruction of the
 * modeled program); the machine model converts it to cycles.  @c bytes is
 * nonzero only for StateCopy/StateCompare tasks, whose cost additionally
 * depends on state size and (for copies) on the NUMA placement the
 * simulator resolves at schedule time.
 */
struct Task
{
    TaskId id = 0;               //!< Dense index within the graph.
    TaskKind kind = TaskKind::ChunkBody;
    ThreadId thread = 0;         //!< Logical software thread executing it.
    std::int32_t chunk = kNoChunk; //!< STATS chunk it belongs to, if any.
    double work = 0.0;           //!< Abstract work units (>= 0).
    std::size_t bytes = 0;       //!< Payload size for copy/compare tasks.
    std::vector<TaskId> deps;    //!< Tasks that must finish before this.
    std::string label;           //!< Optional debugging label.

    /** For StateCopy tasks: the task that produced the copied payload;
     *  the simulator charges the cross-socket penalty when the producer
     *  ran on the other socket.  -1 when not applicable. */
    std::int64_t payloadSource = -1;
};

} // namespace repro::trace

#endif // REPRO_TRACE_TASK_H
