#include "trace/task_graph.h"

#include <algorithm>

#include "util/log.h"

namespace repro::trace {

TaskId
TaskGraph::addTask(TaskKind kind, ThreadId thread, double work,
                   std::int32_t chunk, std::size_t bytes, bool detached)
{
    REPRO_ASSERT(work >= 0.0, "task work must be non-negative");
    Task t;
    t.id = static_cast<TaskId>(tasks_.size());
    t.kind = kind;
    t.thread = thread;
    t.chunk = chunk;
    t.work = work;
    t.bytes = bytes;

    if (thread >= threadSeen.size()) {
        threadSeen.resize(thread + 1, false);
        lastOfThread.resize(thread + 1, 0);
    }
    if (!detached && threadSeen[thread])
        t.deps.push_back(lastOfThread[thread]);
    threadSeen[thread] = true;
    lastOfThread[thread] = t.id;

    tasks_.push_back(std::move(t));
    return tasks_.back().id;
}

void
TaskGraph::addDep(TaskId before, TaskId after)
{
    REPRO_ASSERT(before < tasks_.size() && after < tasks_.size(),
                 "dependency references unknown task");
    REPRO_ASSERT(before != after, "task cannot depend on itself");
    auto &deps = tasks_[after].deps;
    if (std::find(deps.begin(), deps.end(), before) == deps.end())
        deps.push_back(before);
}

void
TaskGraph::setLabel(TaskId id, std::string label)
{
    REPRO_ASSERT(id < tasks_.size(), "label references unknown task");
    tasks_[id].label = std::move(label);
}

const Task &
TaskGraph::task(TaskId id) const
{
    REPRO_ASSERT(id < tasks_.size(), "task id out of range");
    return tasks_[id];
}

Task &
TaskGraph::mutableTask(TaskId id)
{
    REPRO_ASSERT(id < tasks_.size(), "task id out of range");
    return tasks_[id];
}

std::size_t
TaskGraph::numThreads() const
{
    std::size_t threads = 0;
    for (std::size_t t = 0; t < threadSeen.size(); ++t) {
        if (threadSeen[t])
            ++threads;
    }
    return threads;
}

std::array<double, kNumTaskKinds>
TaskGraph::workByKind() const
{
    std::array<double, kNumTaskKinds> sums{};
    for (const auto &t : tasks_)
        sums[static_cast<std::size_t>(t.kind)] += t.work;
    return sums;
}

double
TaskGraph::totalWork() const
{
    double sum = 0.0;
    for (const auto &t : tasks_)
        sum += t.work;
    return sum;
}

std::vector<TaskId>
TaskGraph::topologicalOrder() const
{
    std::vector<std::uint32_t> indegree(tasks_.size(), 0);
    for (const auto &t : tasks_) {
        for (TaskId d : t.deps) {
            (void)d;
            ++indegree[t.id];
        }
    }
    // Successor lists.
    std::vector<std::vector<TaskId>> succ(tasks_.size());
    for (const auto &t : tasks_) {
        for (TaskId d : t.deps)
            succ[d].push_back(t.id);
    }

    std::vector<TaskId> ready;
    for (const auto &t : tasks_) {
        if (indegree[t.id] == 0)
            ready.push_back(t.id);
    }

    std::vector<TaskId> order;
    order.reserve(tasks_.size());
    std::size_t head = 0;
    std::vector<TaskId> queue = std::move(ready);
    while (head < queue.size()) {
        const TaskId id = queue[head++];
        order.push_back(id);
        for (TaskId s : succ[id]) {
            if (--indegree[s] == 0)
                queue.push_back(s);
        }
    }
    REPRO_ASSERT(order.size() == tasks_.size(),
                 "task graph contains a cycle");
    return order;
}

bool
TaskGraph::isAcyclic() const
{
    std::vector<std::uint32_t> indegree(tasks_.size(), 0);
    std::vector<std::vector<TaskId>> succ(tasks_.size());
    for (const auto &t : tasks_) {
        for (TaskId d : t.deps) {
            succ[d].push_back(t.id);
            ++indegree[t.id];
        }
    }
    std::vector<TaskId> queue;
    for (const auto &t : tasks_) {
        if (indegree[t.id] == 0)
            queue.push_back(t.id);
    }
    std::size_t visited = 0, head = 0;
    while (head < queue.size()) {
        const TaskId id = queue[head++];
        ++visited;
        for (TaskId s : succ[id]) {
            if (--indegree[s] == 0)
                queue.push_back(s);
        }
    }
    return visited == tasks_.size();
}

} // namespace repro::trace
