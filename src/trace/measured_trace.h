/**
 * @file
 * Measured (wall-clock) task traces of real executions.
 *
 * The engine emits a *logical* task graph that the platform simulator
 * times; the native runtime (core/native_runtime.h) executes the same
 * protocol with real threads.  This module makes that real execution
 * observable the way the paper instruments STATS binaries (§V-B):
 * the runtime brackets every unit of scheduled work with
 * MeasuredTraceRecorder::begin/end, and the recorder emits a regular
 * trace::TaskGraph whose task costs are measured steady-clock
 * durations (in microseconds) and whose dependency edges mirror the
 * commit protocol.  The existing analysis stack — critical-path
 * extraction, the overhead ladder, Chrome-trace export — then applies
 * unchanged to the measured run (see platform/measured.h).
 *
 * Edge convention: the recorded graph mirrors the *schedule actually
 * executed*, not just the data flow, so the what-if replay reproduces
 * each protocol's constraints.  Under the barrier schedule
 * (NativeRuntime CommitProtocol::Barrier) every chunk body feeds a
 * Sync task — the caller's measured wait at the phase-1 join,
 * recorded via addMeasured() — which gates the first commit check,
 * and each boundary's replica regeneration serializes behind the
 * previous boundary's last commit-protocol task.  Under the pipelined
 * schedule there is no join: commit checks depend only on the two
 * adjacent chunks and the boundary's replicas, and eager replicas
 * hang off the owning chunk's speculative snapshot.  Removing the
 * Sync tasks (ladder step "synchronization") and rebalancing
 * durations (step "imbalance") therefore quantify exactly what the
 * pipelined protocol eliminates.
 *
 * Recording is strictly observational: the recorder never touches RNG
 * streams or program state, so a recorded run stays bit-identical to
 * an unrecorded one (enforced by tests/core/test_native_runtime.cc).
 */

#ifndef REPRO_TRACE_MEASURED_TRACE_H
#define REPRO_TRACE_MEASURED_TRACE_H

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "trace/task_graph.h"
#include "util/thread_pool.h"

namespace repro::trace {

/**
 * One measured execution: a typed task graph plus the wall-clock
 * placement of every task.
 *
 * Units: task work and the timestamp arrays are in microseconds since
 * the start of recording, so a MachineModel with cyclesPerWork = 1
 * treats 1 cycle = 1 us (platform::MachineModel::measured).
 */
struct MeasuredTrace
{
    TaskGraph graph; //!< work = measured duration in microseconds.

    std::vector<double> startUs;  //!< Begin timestamp per TaskId.
    std::vector<double> finishUs; //!< End timestamp per TaskId.

    /** Executor lane per task: dense index of the OS thread that ran
     *  it (pool workers and participating callers alike). */
    std::vector<unsigned> lane;
    unsigned laneCount = 0; //!< Number of distinct executor lanes.

    double wallSeconds = 0.0; //!< Recording span (start to finish()).

    /** Pool-level occupancy observed through the ThreadPool profiler
     *  hooks while this trace recorded (worker-dequeued tasks only). */
    std::uint64_t poolTasks = 0;
    double poolBusySeconds = 0.0;

    /** Latest task end timestamp (the measured makespan), in us. */
    double makespanUs() const;
};

/**
 * Thread-safe recorder of measured tasks.
 *
 * Producers bracket each unit of work with begin()/end() from the
 * thread that executes it; the recorder captures steady-clock
 * timestamps and the executing OS thread.  Task ids are handed out in
 * real-time begin order, so every dependency — implicit program order
 * within a logical thread, or explicit addDep — points from a lower
 * to a higher id.  finish() freezes the recording into a
 * MeasuredTrace.
 */
class MeasuredTraceRecorder
{
  public:
    MeasuredTraceRecorder();
    ~MeasuredTraceRecorder();

    MeasuredTraceRecorder(const MeasuredTraceRecorder &) = delete;
    MeasuredTraceRecorder &operator=(const MeasuredTraceRecorder &) = delete;

    /**
     * Starts a measured task on the calling thread and returns its id.
     * @param thread Logical software thread (same meaning as
     *        Task::thread); consecutive begins on one logical thread
     *        get implicit program-order edges in the final graph.
     */
    TaskId begin(TaskKind kind, ThreadId thread,
                 std::int32_t chunk = kNoChunk);

    /** Ends task @p id, timestamping now.  Must be called once per
     *  begin, from any thread, before finish(). */
    void end(TaskId id);

    /**
     * Records a task whose duration was timed externally and that
     * *ends now*: it is back-dated to [now - duration_us, now] on the
     * calling thread's lane.  For intervals that cannot be bracketed
     * with begin()/end() because they elapse inside a primitive — the
     * native runtime uses this for the caller's measured wait at the
     * ThreadPool::parallelFor join, recorded as a TaskKind::Sync task
     * so the barrier cost is attributable in the §V-B ladder.  Since
     * ids are handed out in *begin-call* order, a back-dated task gets
     * a higher id than tasks begun during the interval; dependencies
     * out of it still point forward in id order as addDep requires.
     */
    TaskId addMeasured(TaskKind kind, ThreadId thread, double duration_us,
                       std::int32_t chunk = kNoChunk);

    /** Explicit dependency: @p after only ran once @p before had
     *  finished.  @p before must have begun before @p after. */
    void addDep(TaskId before, TaskId after);

    /** Re-types a recorded task (e.g. the speculative body of an
     *  aborted chunk becomes MispecReExec, as in the engine). */
    void retag(TaskId id, TaskKind kind);

    /** Tasks recorded so far. */
    std::size_t size() const;

    /**
     * Freezes the recording and builds the measured trace.  Panics if
     * a begun task was never ended (a runtime bug).  The recorder is
     * spent afterwards.
     */
    MeasuredTrace finish();

    /**
     * Profiler to install on a util::ThreadPool while this recording
     * runs; it accumulates worker-side task count and busy time into
     * the trace (MeasuredTrace::poolTasks/poolBusySeconds).  The
     * returned object is owned jointly with the pool, so callbacks
     * that race an uninstall stay safe.
     */
    std::shared_ptr<util::ThreadPool::Profiler> poolProfiler();

  private:
    struct Record
    {
        TaskKind kind = TaskKind::ChunkBody;
        ThreadId thread = 0;
        std::int32_t chunk = kNoChunk;
        unsigned lane = 0;
        double startUs = 0.0;
        double finishUs = 0.0;
        bool ended = false;
    };

    class PoolProbe;

    double nowUs() const;
    unsigned laneOfCallingThread(); //!< Requires mutex_ held.

    mutable std::mutex mutex_;
    std::chrono::steady_clock::time_point origin_;
    std::vector<Record> records_;
    std::vector<std::pair<TaskId, TaskId>> deps_;
    std::map<std::thread::id, unsigned> lanes_;
    std::shared_ptr<PoolProbe> probe_;
};

} // namespace repro::trace

#endif // REPRO_TRACE_MEASURED_TRACE_H
