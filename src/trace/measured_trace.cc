#include "trace/measured_trace.h"

#include <algorithm>
#include <atomic>

#include "util/log.h"

namespace repro::trace {

double
MeasuredTrace::makespanUs() const
{
    double makespan = 0.0;
    for (double f : finishUs)
        makespan = std::max(makespan, f);
    return makespan;
}

/** Accumulates worker-side pool activity (ThreadPool profiler). */
class MeasuredTraceRecorder::PoolProbe : public util::ThreadPool::Profiler
{
  public:
    void
    onTaskBegin(unsigned, util::ThreadPool::Clock::time_point) override
    {
    }

    void
    onTaskEnd(unsigned, util::ThreadPool::Clock::time_point start,
              util::ThreadPool::Clock::time_point end) override
    {
        tasks_.fetch_add(1, std::memory_order_relaxed);
        busyNanos_.fetch_add(
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    end - start)
                    .count()),
            std::memory_order_relaxed);
    }

    std::uint64_t tasks() const
    {
        return tasks_.load(std::memory_order_relaxed);
    }

    double busySeconds() const
    {
        return static_cast<double>(
                   busyNanos_.load(std::memory_order_relaxed)) *
               1e-9;
    }

  private:
    std::atomic<std::uint64_t> tasks_{0};
    std::atomic<std::uint64_t> busyNanos_{0};
};

MeasuredTraceRecorder::MeasuredTraceRecorder()
    : origin_(std::chrono::steady_clock::now()),
      probe_(std::make_shared<PoolProbe>())
{
}

MeasuredTraceRecorder::~MeasuredTraceRecorder() = default;

double
MeasuredTraceRecorder::nowUs() const
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - origin_)
        .count();
}

unsigned
MeasuredTraceRecorder::laneOfCallingThread()
{
    const auto [it, inserted] = lanes_.try_emplace(
        std::this_thread::get_id(),
        static_cast<unsigned>(lanes_.size()));
    (void)inserted;
    return it->second;
}

TaskId
MeasuredTraceRecorder::begin(TaskKind kind, ThreadId thread,
                             std::int32_t chunk)
{
    const double start = nowUs();
    std::lock_guard<std::mutex> lock(mutex_);
    Record rec;
    rec.kind = kind;
    rec.thread = thread;
    rec.chunk = chunk;
    rec.lane = laneOfCallingThread();
    rec.startUs = start;
    records_.push_back(rec);
    return static_cast<TaskId>(records_.size() - 1);
}

void
MeasuredTraceRecorder::end(TaskId id)
{
    const double finish = nowUs();
    std::lock_guard<std::mutex> lock(mutex_);
    REPRO_ASSERT(id < records_.size(), "end() of an unknown task");
    Record &rec = records_[id];
    REPRO_ASSERT(!rec.ended, "task ended twice");
    rec.finishUs = std::max(finish, rec.startUs);
    rec.ended = true;
}

TaskId
MeasuredTraceRecorder::addMeasured(TaskKind kind, ThreadId thread,
                                   double duration_us, std::int32_t chunk)
{
    const double finish = nowUs();
    std::lock_guard<std::mutex> lock(mutex_);
    Record rec;
    rec.kind = kind;
    rec.thread = thread;
    rec.chunk = chunk;
    rec.lane = laneOfCallingThread();
    rec.startUs = std::max(0.0, finish - std::max(0.0, duration_us));
    rec.finishUs = finish;
    rec.ended = true;
    records_.push_back(rec);
    return static_cast<TaskId>(records_.size() - 1);
}

void
MeasuredTraceRecorder::addDep(TaskId before, TaskId after)
{
    std::lock_guard<std::mutex> lock(mutex_);
    REPRO_ASSERT(before < records_.size() && after < records_.size(),
                 "dependency references unknown measured task");
    REPRO_ASSERT(before < after,
                 "measured dependency must point backwards in time");
    deps_.emplace_back(before, after);
}

void
MeasuredTraceRecorder::retag(TaskId id, TaskKind kind)
{
    std::lock_guard<std::mutex> lock(mutex_);
    REPRO_ASSERT(id < records_.size(), "retag of an unknown task");
    records_[id].kind = kind;
}

std::size_t
MeasuredTraceRecorder::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return records_.size();
}

MeasuredTrace
MeasuredTraceRecorder::finish()
{
    std::lock_guard<std::mutex> lock(mutex_);
    MeasuredTrace trace;
    trace.startUs.reserve(records_.size());
    trace.finishUs.reserve(records_.size());
    trace.lane.reserve(records_.size());
    for (const Record &rec : records_) {
        REPRO_ASSERT(rec.ended, "measured task begun but never ended");
        trace.graph.addTask(rec.kind, rec.thread,
                            rec.finishUs - rec.startUs, rec.chunk);
        trace.startUs.push_back(rec.startUs);
        trace.finishUs.push_back(rec.finishUs);
        trace.lane.push_back(rec.lane);
    }
    for (const auto &[before, after] : deps_)
        trace.graph.addDep(before, after);
    trace.laneCount = static_cast<unsigned>(lanes_.size());
    trace.wallSeconds = nowUs() * 1e-6;
    trace.poolTasks = probe_->tasks();
    trace.poolBusySeconds = probe_->busySeconds();
    return trace;
}

std::shared_ptr<util::ThreadPool::Profiler>
MeasuredTraceRecorder::poolProfiler()
{
    return probe_;
}

} // namespace repro::trace
