#include "trace/op_counter.h"

namespace repro::trace {

std::uint64_t
OpCounter::total() const
{
    std::uint64_t sum = 0;
    for (auto c : counts)
        sum += c;
    return sum;
}

std::uint64_t
OpCounter::overheadTotal() const
{
    std::uint64_t sum = 0;
    for (std::size_t k = 0; k < kNumTaskKinds; ++k) {
        if (isOverheadKind(static_cast<TaskKind>(k)))
            sum += counts[k];
    }
    return sum;
}

void
OpCounter::transfer(TaskKind from, TaskKind to, std::uint64_t n)
{
    auto &src = counts[static_cast<std::size_t>(from)];
    const std::uint64_t moved = n < src ? n : src;
    src -= moved;
    counts[static_cast<std::size_t>(to)] += moved;
}

void
OpCounter::reset()
{
    counts.fill(0);
}

void
OpCounter::merge(const OpCounter &other)
{
    for (std::size_t k = 0; k < kNumTaskKinds; ++k)
        counts[k] += other.counts[k];
}

} // namespace repro::trace
