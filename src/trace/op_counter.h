/**
 * @file
 * Dynamic-instruction accounting by overhead category.
 *
 * The paper's Figures 14 and 15 report the *extra instructions* executed
 * by STATS binaries relative to the original program, broken down by the
 * component of the execution model that executes them.  Workload kernels
 * tick an OpCounter while they run (one tick ~ one dynamic instruction of
 * the modeled program); the engine routes ticks to the category of the
 * task being executed.
 */

#ifndef REPRO_TRACE_OP_COUNTER_H
#define REPRO_TRACE_OP_COUNTER_H

#include <array>
#include <cstdint>

#include "trace/task.h"

namespace repro::trace {

/**
 * Per-category dynamic operation counts for one run.
 */
class OpCounter
{
  public:
    /** Adds @p n operations to @p kind's bucket. */
    void
    tick(TaskKind kind, std::uint64_t n)
    {
        counts[static_cast<std::size_t>(kind)] += n;
    }

    /** Operations charged to @p kind so far. */
    std::uint64_t
    count(TaskKind kind) const
    {
        return counts[static_cast<std::size_t>(kind)];
    }

    /** Total operations across all categories. */
    std::uint64_t total() const;

    /** Total operations in overhead categories (see isOverheadKind). */
    std::uint64_t overheadTotal() const;

    /**
     * Moves @p n operations from one bucket to another (used when work
     * executed speculatively is re-attributed after an abort).  Moves at
     * most what @p from holds.
     */
    void transfer(TaskKind from, TaskKind to, std::uint64_t n);

    /** Resets every bucket to zero. */
    void reset();

    /** Accumulates another counter into this one. */
    void merge(const OpCounter &other);

  private:
    std::array<std::uint64_t, kNumTaskKinds> counts{};
};

} // namespace repro::trace

#endif // REPRO_TRACE_OP_COUNTER_H
