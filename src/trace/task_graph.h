/**
 * @file
 * The task graph emitted by a STATS run.
 *
 * A TaskGraph is a DAG of typed tasks (see task.h) with intra-thread
 * program order expressed as ordinary dependencies.  It is the interface
 * between the STATS engine (producer), the platform simulator (consumer),
 * and the what-if analysis (which consumes transformed copies).
 */

#ifndef REPRO_TRACE_TASK_GRAPH_H
#define REPRO_TRACE_TASK_GRAPH_H

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "trace/task.h"

namespace repro::trace {

/**
 * Mutable builder/container for the DAG of tasks of one parallel run.
 */
class TaskGraph
{
  public:
    /**
     * Appends a task and returns its id.
     *
     * The new task automatically depends on the previously added task of
     * the same thread (program order), unless @p detached is true.
     *
     * @param kind Category of the work.
     * @param thread Logical software thread executing the task.
     * @param work Abstract work units.
     * @param chunk STATS chunk index or kNoChunk.
     * @param bytes Payload for copy/compare tasks.
     * @param detached Skip the implicit program-order dependency.
     */
    TaskId addTask(TaskKind kind, ThreadId thread, double work,
                   std::int32_t chunk = kNoChunk, std::size_t bytes = 0,
                   bool detached = false);

    /** Adds an explicit dependency: @p after runs only once @p before
     *  finished.  Duplicate edges are ignored. */
    void addDep(TaskId before, TaskId after);

    /** Sets a human-readable label on @p id (debugging only). */
    void setLabel(TaskId id, std::string label);

    /** Immutable task access. */
    const Task &task(TaskId id) const;
    /** Mutable task access (used by graph transforms in analysis). */
    Task &mutableTask(TaskId id);

    /** Number of tasks. */
    std::size_t size() const { return tasks_.size(); }
    /** True when no task has been added. */
    bool empty() const { return tasks_.empty(); }
    /** All tasks in insertion order. */
    const std::vector<Task> &tasks() const { return tasks_; }

    /** Number of distinct software threads referenced. */
    std::size_t numThreads() const;

    /** Sum of work units per kind. */
    std::array<double, kNumTaskKinds> workByKind() const;

    /** Sum of all work units. */
    double totalWork() const;

    /**
     * Topological order of task ids.
     *
     * @return Ids in a valid execution order.
     * @throws via util::panic if the graph has a cycle (engine bug).
     */
    std::vector<TaskId> topologicalOrder() const;

    /** True iff the dependence relation is acyclic. */
    bool isAcyclic() const;

  private:
    std::vector<Task> tasks_;
    std::vector<TaskId> lastOfThread; //!< Last task id per thread, for
                                      //!< implicit program-order edges.
    std::vector<bool> threadSeen;
};

} // namespace repro::trace

#endif // REPRO_TRACE_TASK_GRAPH_H
