#include "trace/task.h"

namespace repro::trace {

const char *
taskKindName(TaskKind kind)
{
    switch (kind) {
      case TaskKind::ChunkBody:        return "chunk-body";
      case TaskKind::AltProducer:      return "alt-producer";
      case TaskKind::OriginalStateGen: return "original-state-gen";
      case TaskKind::StateCompare:     return "state-compare";
      case TaskKind::StateCopy:        return "state-copy";
      case TaskKind::Setup:            return "setup";
      case TaskKind::Sync:             return "sync";
      case TaskKind::SeqCode:          return "seq-code";
      case TaskKind::MispecReExec:     return "mispec-reexec";
      case TaskKind::NumKinds:         break;
    }
    return "?";
}

bool
isOverheadKind(TaskKind kind)
{
    return kind != TaskKind::ChunkBody && kind != TaskKind::SeqCode;
}

} // namespace repro::trace
