/**
 * @file
 * One-stop characterization of a single benchmark: everything the
 * paper measures, for one workload, in one report — Table I structure,
 * Fig. 9 speedups, the Fig. 10 overhead breakdown, extra instructions
 * (Fig. 14), and output quality (Fig. 16).
 *
 * Usage: ./build/examples/characterize bodytrack [--scale=0.5]
 *        ./build/examples/characterize facetrack --timeline
 *        ./build/examples/characterize swaptions --trace=out.json
 *        ./build/examples/characterize --list
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "analysis/critical_path.h"
#include "analysis/overheads.h"
#include "analysis/quality.h"
#include "analysis/speedup.h"
#include "core/engine.h"
#include "platform/des.h"
#include "platform/machine.h"
#include "platform/trace_export.h"
#include "util/cli.h"
#include "workloads/workload.h"

using namespace repro;

int
main(int argc, char **argv)
{
    const util::Cli cli(argc, argv);
    if (cli.getBool("list", false)) {
        for (const auto &name : workloads::workloadNames())
            std::printf("%s\n", name.c_str());
        return 0;
    }
    const std::string name = cli.positional().empty()
                                 ? "bodytrack"
                                 : cli.positional().front();
    const double scale = cli.getDouble("scale", 0.5);
    const std::uint64_t seed =
        static_cast<std::uint64_t>(cli.getInt("seed", 42));

    const auto w = workloads::makeWorkload(name, scale);
    const core::Engine engine;
    const auto cfg = w->tunedConfig(28);

    std::printf("== %s (scale %.2f) ==\n", name.c_str(), scale);
    std::printf("inputs %zu, state %zu bytes, tuned %s\n",
                w->model().numInputs(), w->model().stateSizeBytes(),
                cfg.describe().c_str());

    // Structure (Table I).
    const auto run = engine.runStats(w->model(), w->region(),
                                     w->tlpModel(), cfg, seed);
    std::printf("threads %u, states %u, commits %u, aborts %u\n",
                run.threadsCreated, run.statesCreated, run.commits,
                run.aborts);

    // Post-mortem critical path (paper §V-B instrumentation) and the
    // optional timeline views.
    const platform::Simulator sim(platform::MachineModel::haswell(28));
    const auto sched = sim.run(run.graph);
    std::printf("%s",
                analysis::criticalPathReport(sched, run.graph)
                    .describe()
                    .c_str());
    if (cli.getBool("timeline", false)) {
        std::printf("%s", platform::asciiTimeline(sched, run.graph, 100)
                              .c_str());
    }
    const std::string trace_path = cli.getString("trace", "");
    if (!trace_path.empty()) {
        std::ofstream out(trace_path);
        platform::writeChromeTrace(sched, run.graph, out);
        std::printf("chrome trace written to %s\n", trace_path.c_str());
    }

    // Speedups (Fig. 9).
    const analysis::SpeedupMeter meter(engine);
    const auto s14 = meter.measure(*w, 14, seed);
    const auto s28 = meter.measure(*w, 28, seed);
    std::printf("speedup  original %.2f/%.2f  seq-stats %.2f/%.2f  "
                "par-stats %.2f/%.2f  (14/28 cores)\n",
                s14.original, s28.original, s14.seqStats, s28.seqStats,
                s14.parStats, s28.parStats);

    // Overheads (Fig. 10).
    const analysis::OverheadAnalyzer analyzer(
        engine, platform::MachineModel::haswell(28));
    const auto b = analyzer.analyze(*w, cfg, seed);
    std::printf("speedup lost to:");
    for (std::size_t c = 0; c < analysis::kNumOverheadCategories; ++c) {
        std::printf(" %s %.1f%%",
                    analysis::overheadCategoryName(
                        static_cast<analysis::OverheadCategory>(c)),
                    100.0 * b.lostFraction[c]);
    }
    std::printf("\n");

    // Extra instructions (Fig. 14).
    const auto base = engine.runOriginalTlp(w->model(), w->region(),
                                            w->tlpModel(), 28, seed);
    std::printf("extra instructions vs original: %+.1f%%\n",
                100.0 *
                    (static_cast<double>(run.ops.total()) -
                     static_cast<double>(base.ops.total())) /
                    static_cast<double>(base.ops.total()));

    // Output quality (Fig. 16), 24 quick runs.
    const auto orig = analysis::measureQuality(
        *w, engine, analysis::QualityMode::Original, 24, 28, seed);
    const auto stats = analysis::measureQuality(
        *w, engine, analysis::QualityMode::Stats, 24, 28, seed);
    std::printf("output quality (median, lower=better): original %.4f, "
                "stats %.4f\n",
                orig.median, stats.median);
    return 0;
}
