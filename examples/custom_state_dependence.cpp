/**
 * @file
 * Bringing your own workload to the autotuner.
 *
 * Defines a small custom nondeterministic computation (a stochastic
 * cellular annealer), wraps it as a state dependence, and lets the
 * three search strategies explore the STATS design space the way the
 * paper's OpenTuner setup does (§II-C, §IV-B).
 *
 * Usage: ./build/examples/custom_state_dependence [--budget=80]
 */

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "autotuner/tuner.h"
#include "core/engine.h"
#include "platform/machine.h"
#include "util/cli.h"
#include "workloads/workload.h"

using namespace repro;

namespace {

/** State: a small grid of spins plus an annealing temperature. */
struct AnnealState : core::TypedState<AnnealState>
{
    std::vector<double> spins = std::vector<double>(64, 0.0);
    double temperature = 2.0;
};

/**
 * Stochastic annealer: each input performs a sweep of noisy local
 * relaxations and cools slightly.  Short memory: the temperature floor
 * and the local relaxation make the grid forget its past after a few
 * dozen sweeps.
 */
class Annealer : public core::IStateModel
{
  public:
    std::string name() const override { return "annealer"; }
    std::size_t numInputs() const override { return 2048; }

    core::StateHandle
    initialState() const override
    {
        return std::make_unique<AnnealState>();
    }

    core::StateHandle
    coldState() const override
    {
        return std::make_unique<AnnealState>();
    }

    double
    update(core::State &state, std::size_t input,
           core::ExecContext &ctx) const override
    {
        auto &s = static_cast<AnnealState &>(state);
        const double target =
            std::sin(static_cast<double>(input) * 0.004);
        double energy = 0.0;
        for (std::size_t i = 0; i < s.spins.size(); ++i) {
            const double left = s.spins[(i + 63) % 64];
            const double right = s.spins[(i + 1) % 64];
            const double proposal =
                0.5 * (left + right) * 0.5 + 0.5 * target +
                ctx.rng().gaussian(0.0, s.temperature * 0.02);
            s.spins[i] = 0.6 * s.spins[i] + 0.4 * proposal;
            energy += (s.spins[i] - target) * (s.spins[i] - target);
        }
        s.temperature = std::max(0.2, s.temperature * 0.999);
        ctx.tick(64 * 40);
        return energy / 64.0;
    }

    bool
    matches(const core::State &spec,
            const core::State &orig) const override
    {
        const auto &a = static_cast<const AnnealState &>(spec);
        const auto &b = static_cast<const AnnealState &>(orig);
        double d = 0.0;
        for (std::size_t i = 0; i < a.spins.size(); ++i)
            d += std::abs(a.spins[i] - b.spins[i]);
        return d / 64.0 <= 0.05;
    }

    std::size_t stateSizeBytes() const override { return 64 * 8 + 8; }
};

/** Minimal Workload adapter so the tuner's Objective can profile it. */
class AnnealerWorkload : public workloads::Workload
{
  public:
    std::string name() const override { return "annealer"; }
    const core::IStateModel &model() const override { return model_; }
    core::RegionProfile region() const override { return {5000, 5000}; }
    core::TlpModel tlpModel() const override { return {}; }

    core::StatsConfig
    tunedConfig(unsigned cores) const override
    {
        core::StatsConfig cfg;
        cfg.numChunks = cores;
        cfg.altWindowK = 24;
        cfg.numOriginalStates = 2;
        return cfg;
    }

    double
    quality(const std::vector<double> &outputs) const override
    {
        return outputs.back();
    }

    perfmodel::AccessProfile
    accessProfile() const override
    {
        return {};
    }

  private:
    Annealer model_;
};

} // namespace

int
main(int argc, char **argv)
{
    const util::Cli cli(argc, argv);
    const std::size_t budget =
        static_cast<std::size_t>(cli.getInt("budget", 80));

    const AnnealerWorkload workload;
    const core::Engine engine;
    const autotuner::Objective objective(
        workload, engine, platform::MachineModel::haswell(28));
    const auto space = workload.designSpace(28);
    std::printf("design space: %zu configurations\n", space.size());

    autotuner::Tuner::Options opt;
    opt.budget = budget;
    const autotuner::Tuner tuner(opt);

    auto random = autotuner::makeRandomSearch();
    auto climb = autotuner::makeHillClimb();
    auto evo = autotuner::makeEvolutionary();
    for (autotuner::SearchStrategy *strategy :
         {random.get(), climb.get(), evo.get()}) {
        const auto result = tuner.tune(objective, space, *strategy);
        std::printf("%-12s: explored %3zu configs, best %s "
                    "(%.0f kcycles)\n",
                    strategy->name().c_str(), result.evaluated,
                    result.best.config.describe().c_str(),
                    result.best.cycles / 1e3);
    }
    return 0;
}
