/**
 * @file
 * Quickstart: parallelize your own nondeterministic loop with STATS.
 *
 * The program below has a classic state dependence: each input updates
 * a running, noisy estimate based on the previous estimate.  Sequential
 * semantics chain every iteration — but the estimate has the *short
 * memory* property (old inputs stop mattering), which is exactly what
 * STATS exploits (paper §II).
 *
 * Steps shown here:
 *   1. Describe the dependence by implementing core::IStateModel.
 *   2. Pick a StatsConfig (chunks, replay window k, original states).
 *   3. Run it: logically + simulated 28-core timing, and natively with
 *      real threads.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cmath>
#include <cstdio>
#include <memory>

#include "core/engine.h"
#include "core/native_runtime.h"
#include "platform/des.h"

using namespace repro;

namespace {

/** The computational state: a smoothed sensor estimate. */
struct SensorState : core::TypedState<SensorState>
{
    double estimate = 0.0;
};

/**
 * A noisy sensor smoother: estimate' = 0.7 estimate + 0.3 (signal + noise).
 * The 0.7 decay gives it a short memory: after ~12 inputs the starting
 * value is irrelevant, so an alternative producer replaying 12 inputs
 * reproduces the state a full-history run would have.
 */
class SensorSmoother : public core::IStateModel
{
  public:
    std::string name() const override { return "sensor-smoother"; }
    std::size_t numInputs() const override { return 4096; }

    core::StateHandle
    initialState() const override
    {
        return std::make_unique<SensorState>();
    }

    core::StateHandle
    coldState() const override
    {
        return std::make_unique<SensorState>();
    }

    double
    update(core::State &state, std::size_t input,
           core::ExecContext &ctx) const override
    {
        auto &s = static_cast<SensorState &>(state);
        const double signal =
            std::sin(static_cast<double>(input) * 0.01);
        const double measurement =
            signal + ctx.rng().gaussian(0.0, 0.05);
        s.estimate = 0.7 * s.estimate + 0.3 * measurement;
        ctx.tick(5000); // ~dynamic instructions this update costs.
        return s.estimate;
    }

    bool
    matches(const core::State &spec,
            const core::State &orig) const override
    {
        const auto &a = static_cast<const SensorState &>(spec);
        const auto &b = static_cast<const SensorState &>(orig);
        return std::abs(a.estimate - b.estimate) <= 0.05;
    }

    std::size_t stateSizeBytes() const override { return 8; }
};

} // namespace

int
main()
{
    const SensorSmoother model;

    // 2. The STATS configuration: 28 parallel chunks, alternative
    //    producers replay k=16 inputs, 2 original states per boundary.
    core::StatsConfig config;
    config.numChunks = 28;
    config.altWindowK = 16;
    config.numOriginalStates = 2;

    // 3a. Logical run + simulated timing on the paper's machine.
    const core::Engine engine;
    const auto seq = engine.runSequential(model, {}, /*seed=*/1);
    const auto stats =
        engine.runStats(model, {}, core::TlpModel{}, config, /*seed=*/1);

    const platform::Simulator sim(platform::MachineModel::haswell(28));
    const double t_seq = sim.run(seq.graph).makespan;
    const double t_stats = sim.run(stats.graph).makespan;

    std::printf("config            : %s\n", config.describe().c_str());
    std::printf("commits / aborts  : %u / %u\n", stats.commits,
                stats.aborts);
    std::printf("threads created   : %u\n", stats.threadsCreated);
    std::printf("simulated speedup : %.2fx on 28 cores\n",
                t_seq / t_stats);
    std::printf("extra instructions: %+.1f%%\n",
                100.0 *
                    (static_cast<double>(stats.ops.total()) -
                     static_cast<double>(seq.ops.total())) /
                    static_cast<double>(seq.ops.total()));

    // 3b. Native run with real threads: same protocol, same outputs.
    const core::NativeRuntime native;
    const auto real = native.run(model, config, /*seed=*/1);
    std::printf("native run        : %u commits, %u aborts, %.1f ms\n",
                real.commits, real.aborts, real.wallSeconds * 1e3);
    std::printf("outputs identical : %s\n",
                real.outputs == stats.outputs ? "yes" : "NO");
    return 0;
}
