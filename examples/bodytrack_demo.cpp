/**
 * @file
 * bodytrack, the paper's driving example (§II-A), end to end.
 *
 * Runs the articulated-body particle filter sequentially and under
 * STATS (both natively with real threads and logically with simulated
 * 28-core timing), then reports tracking quality, speculation
 * behaviour, and the characteristic +107% extra instructions of
 * Fig. 14.
 *
 * Usage: ./build/examples/bodytrack_demo [--scale=0.5] [--seed=7]
 */

#include <cstdio>

#include "core/engine.h"
#include "core/native_runtime.h"
#include "platform/des.h"
#include "util/cli.h"
#include "workloads/workload.h"

using namespace repro;

int
main(int argc, char **argv)
{
    const util::Cli cli(argc, argv);
    const double scale = cli.getDouble("scale", 1.0);
    const std::uint64_t seed =
        static_cast<std::uint64_t>(cli.getInt("seed", 7));

    const auto w = workloads::makeWorkload("bodytrack", scale);
    const auto &model = w->model();
    core::StatsConfig config = w->tunedConfig(28);

    std::printf("bodytrack: %zu frames, state %zu bytes, config %s\n",
                model.numInputs(), model.stateSizeBytes(),
                config.describe().c_str());

    // Sequential reference.
    const core::NativeRuntime native;
    const auto seq = native.runSequential(model, seed);
    std::printf("sequential: mean tracking error %.3f (%.1f ms)\n",
                w->quality(seq.outputs), seq.wallSeconds * 1e3);

    // STATS with real threads (the inner original-TLP fan-out
    // parallelizes within update() in the real system; the native
    // runtime exercises the STATS TLP).
    core::StatsConfig native_cfg = config;
    native_cfg.innerTlpThreads = 1;
    const auto par = native.run(model, native_cfg, seed);
    std::printf("stats     : mean tracking error %.3f (%.1f ms), "
                "%u commits, %u aborts\n",
                w->quality(par.outputs), par.wallSeconds * 1e3,
                par.commits, par.aborts);

    // Logical run + 28-core simulated timing and instruction counts.
    const core::Engine engine;
    const auto base = engine.runOriginalTlp(model, w->region(),
                                            w->tlpModel(), 28, seed);
    const auto stats = engine.runStats(model, w->region(), w->tlpModel(),
                                       config, seed);
    const platform::Simulator sim(platform::MachineModel::haswell(28));
    const double t_seq =
        sim.run(engine.runSequential(model, w->region(), seed).graph)
            .makespan;
    std::printf("simulated : %.2fx speedup on 28 cores, %+0.1f%% "
                "instructions vs original build\n",
                t_seq / sim.run(stats.graph).makespan,
                100.0 *
                    (static_cast<double>(stats.ops.total()) -
                     static_cast<double>(base.ops.total())) /
                    static_cast<double>(base.ops.total()));
    std::printf("            (the paper reports +107.4%% for bodytrack "
                "at 28 cores, Fig. 14)\n");
    return 0;
}
